"""The paper's predicate perceptron predictor (section 3.3, Figure 4).

Differences with the conventional perceptron of
:mod:`repro.predictors.perceptron`:

* it is indexed with the **compare** PC, not the branch PC — branches never
  touch the predictor at all;
* each compare may need **two** predictions (one per predicate target).
  Rather than splitting the perceptron vector table (PVT), which would waste
  space because many compares use the read-only ``p0`` as their second
  target, a single PVT is accessed with two hash functions: ``f1`` folds the
  PC over the table, and ``f2`` simply inverts the most significant index
  bit of ``f1``;
* its global history register is fed by *predicate predictions* (one bit per
  predicted predicate target), not by branch outcomes — that policy lives in
  the scheme layer, the structure itself just consumes the supplied history
  value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.perf.flags import resolve_optimized
from repro.predictors.base import PredictorSizeReport, fold_pc
from repro.predictors.history import LocalHistoryTable
from repro.predictors.perceptron import (
    PerceptronConfig,
    flat_perceptron_output,
    flat_perceptron_train,
    perceptron_output,
    perceptron_train,
)


@dataclass(frozen=True)
class PredicatePredictorConfig:
    """Geometry of the predicate perceptron (148 KB, Table 1)."""

    global_bits: int = 30
    local_bits: int = 10
    weight_bits: int = 8
    entries: int = 3634
    local_history_entries: int = 2048
    #: When True the PVT is statically split in two halves, one per predicate
    #: target, instead of sharing a single table through two hash functions.
    #: Section 3.3 argues (and the ablation benchmark confirms) that the
    #: split wastes capacity because many compares only need one prediction.
    split_pvt: bool = False

    @property
    def num_weights(self) -> int:
        return self.global_bits + self.local_bits + 1

    @property
    def theta(self) -> int:
        return int(1.93 * (self.global_bits + self.local_bits) + 14)

    @property
    def weight_min(self) -> int:
        return -(1 << (self.weight_bits - 1))

    @property
    def weight_max(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    @classmethod
    def matching(cls, perceptron: PerceptronConfig) -> "PredicatePredictorConfig":
        """Build a configuration with the same geometry as a conventional
        perceptron configuration (used to keep the comparison size-fair)."""
        return cls(
            global_bits=perceptron.global_bits,
            local_bits=perceptron.local_bits,
            weight_bits=perceptron.weight_bits,
            entries=perceptron.entries,
            local_history_entries=perceptron.local_history_entries,
        )


class PredicatePerceptronPredictor:
    """Perceptron predictor over compare instructions with a dual-hash PVT."""

    #: Index of the first (true-sense) predicate target of a compare.
    SLOT_FIRST = 0
    #: Index of the second (false-sense) predicate target of a compare.
    SLOT_SECOND = 1

    def __init__(
        self,
        config: Optional[PredicatePredictorConfig] = None,
        optimized: Optional[bool] = None,
    ) -> None:
        self.config = config or PredicatePredictorConfig()
        cfg = self.config
        self.optimized = resolve_optimized(optimized)
        self._num_weights = cfg.num_weights
        self._global_mask = (1 << cfg.global_bits) - 1
        self._local_mask = (1 << cfg.local_bits) - 1
        if self.optimized:
            # Flat PVT: one list indexed by ``entry * num_weights`` (see
            # PerceptronPredictor — identical arithmetic, parity-tested).
            self._flat: Optional[List[int]] = [0] * (cfg.entries * cfg.num_weights)
            self._pvt: Optional[List[List[int]]] = None
        else:
            self._flat = None
            self._pvt = [[0] * cfg.num_weights for _ in range(cfg.entries)]
        self.local_histories = LocalHistoryTable(cfg.local_history_entries, cfg.local_bits)
        # Pure memo of the two per-slot PVT indices of each compare PC.
        self._slot_index: dict = {}

    # ------------------------------------------------------------------
    # Hashing: f1 folds the PC; f2 inverts the MSB of f1's index.
    # ------------------------------------------------------------------
    def _f1(self, pc: int) -> int:
        return fold_pc(pc, 24) % self.config.entries

    def _f2(self, pc: int) -> int:
        index = self._f1(pc)
        if self.config.entries < 2:
            return index
        # Invert the most significant bit of the index (section 3.3).  The
        # MSB position is taken from the index width needed to address the
        # table, so the flipped index is always different from f1's.
        msb = 1 << ((self.config.entries - 1).bit_length() - 1)
        return (index ^ msb) % self.config.entries

    def index_for_slot(self, pc: int, slot: int) -> int:
        """PVT index used for a compare's predicate target ``slot`` (0 or 1)."""
        if slot not in (self.SLOT_FIRST, self.SLOT_SECOND):
            raise ValueError(f"invalid predicate slot {slot}")
        cached = self._slot_index.get(pc)
        if cached is None:
            if self.config.split_pvt:
                half = max(1, self.config.entries // 2)
                base = fold_pc(pc, 24) % half
                cached = (base, base + half)
            else:
                cached = (self._f1(pc), self._f2(pc))
            self._slot_index[pc] = cached
        return cached[slot]

    def _local_key(self, pc: int, slot: int) -> int:
        # Distinguish the two targets' local histories without a second table.
        return pc + (slot << 1)

    def _combined_history(self, pc: int, slot: int, global_history: int) -> int:
        global_part = global_history & self._global_mask
        local_part = self.local_histories.read(self._local_key(pc, slot))
        local_part &= self._local_mask
        return (local_part << self.config.global_bits) | global_part

    # ------------------------------------------------------------------
    def weight_row(self, index: int) -> List[int]:
        """A copy of the weights of PVT entry ``index`` (parity tests)."""
        if self._pvt is not None:
            return list(self._pvt[index])
        base = index * self._num_weights
        return self._flat[base : base + self._num_weights]

    # ------------------------------------------------------------------
    def predict_slot(self, pc: int, slot: int, global_history: int) -> Tuple[bool, int]:
        """Predict one predicate target of the compare at ``pc``.

        Returns ``(predicted_value, raw_output)``.
        """
        combined = self._combined_history(pc, slot, global_history)
        if self._flat is not None:
            base = self.index_for_slot(pc, slot) * self._num_weights
            output = flat_perceptron_output(self._flat, base, self._num_weights, combined)
        else:
            output = perceptron_output(self._pvt[self.index_for_slot(pc, slot)], combined)
        return output >= 0, output

    def predict_compare(self, pc: int, global_history: int) -> Tuple[bool, bool]:
        """Predict both predicate targets of the compare at ``pc``."""
        first, _ = self.predict_slot(pc, self.SLOT_FIRST, global_history)
        second, _ = self.predict_slot(pc, self.SLOT_SECOND, global_history)
        return first, second

    def update_slot(self, pc: int, slot: int, global_history: int, outcome: bool) -> None:
        """Train the entry used for (``pc``, ``slot``) with the computed value."""
        cfg = self.config
        combined = self._combined_history(pc, slot, global_history)
        if self._flat is not None:
            nw = self._num_weights
            base = self.index_for_slot(pc, slot) * nw
            output = flat_perceptron_output(self._flat, base, nw, combined)
            if (output >= 0) != outcome or abs(output) <= cfg.theta:
                flat_perceptron_train(
                    self._flat, base, nw, combined, outcome, cfg.weight_min, cfg.weight_max
                )
        else:
            row = self._pvt[self.index_for_slot(pc, slot)]
            output = perceptron_output(row, combined)
            prediction = output >= 0
            if prediction != outcome or abs(output) <= cfg.theta:
                perceptron_train(row, combined, outcome, cfg.weight_min, cfg.weight_max)
        self.local_histories.update(self._local_key(pc, slot), outcome)

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add("pvt", cfg.entries * cfg.num_weights * cfg.weight_bits)
        report.add("local-history-table", self.local_histories.storage_bits())
        report.add("ghr", cfg.global_bits)
        return report
