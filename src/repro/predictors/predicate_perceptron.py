"""The paper's predicate perceptron predictor (section 3.3, Figure 4).

Differences with the conventional perceptron of
:mod:`repro.predictors.perceptron`:

* it is indexed with the **compare** PC, not the branch PC — branches never
  touch the predictor at all;
* each compare may need **two** predictions (one per predicate target).
  Rather than splitting the perceptron vector table (PVT), which would waste
  space because many compares use the read-only ``p0`` as their second
  target, a single PVT is accessed with two hash functions: ``f1`` folds the
  PC over the table, and ``f2`` simply inverts the most significant index
  bit of ``f1``;
* its global history register is fed by *predicate predictions* (one bit per
  predicted predicate target), not by branch outcomes — that policy lives in
  the scheme layer, the structure itself just consumes the supplied history
  value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.predictors.base import PredictorSizeReport, fold_pc
from repro.predictors.history import LocalHistoryTable
from repro.predictors.perceptron import (
    PerceptronConfig,
    perceptron_output,
    perceptron_train,
)


@dataclass(frozen=True)
class PredicatePredictorConfig:
    """Geometry of the predicate perceptron (148 KB, Table 1)."""

    global_bits: int = 30
    local_bits: int = 10
    weight_bits: int = 8
    entries: int = 3634
    local_history_entries: int = 2048
    #: When True the PVT is statically split in two halves, one per predicate
    #: target, instead of sharing a single table through two hash functions.
    #: Section 3.3 argues (and the ablation benchmark confirms) that the
    #: split wastes capacity because many compares only need one prediction.
    split_pvt: bool = False

    @property
    def num_weights(self) -> int:
        return self.global_bits + self.local_bits + 1

    @property
    def theta(self) -> int:
        return int(1.93 * (self.global_bits + self.local_bits) + 14)

    @property
    def weight_min(self) -> int:
        return -(1 << (self.weight_bits - 1))

    @property
    def weight_max(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    @classmethod
    def matching(cls, perceptron: PerceptronConfig) -> "PredicatePredictorConfig":
        """Build a configuration with the same geometry as a conventional
        perceptron configuration (used to keep the comparison size-fair)."""
        return cls(
            global_bits=perceptron.global_bits,
            local_bits=perceptron.local_bits,
            weight_bits=perceptron.weight_bits,
            entries=perceptron.entries,
            local_history_entries=perceptron.local_history_entries,
        )


class PredicatePerceptronPredictor:
    """Perceptron predictor over compare instructions with a dual-hash PVT."""

    #: Index of the first (true-sense) predicate target of a compare.
    SLOT_FIRST = 0
    #: Index of the second (false-sense) predicate target of a compare.
    SLOT_SECOND = 1

    def __init__(self, config: Optional[PredicatePredictorConfig] = None) -> None:
        self.config = config or PredicatePredictorConfig()
        cfg = self.config
        self._pvt: List[List[int]] = [[0] * cfg.num_weights for _ in range(cfg.entries)]
        self.local_histories = LocalHistoryTable(cfg.local_history_entries, cfg.local_bits)

    # ------------------------------------------------------------------
    # Hashing: f1 folds the PC; f2 inverts the MSB of f1's index.
    # ------------------------------------------------------------------
    def _f1(self, pc: int) -> int:
        return fold_pc(pc, 24) % self.config.entries

    def _f2(self, pc: int) -> int:
        index = self._f1(pc)
        if self.config.entries < 2:
            return index
        # Invert the most significant bit of the index (section 3.3).  The
        # MSB position is taken from the index width needed to address the
        # table, so the flipped index is always different from f1's.
        msb = 1 << ((self.config.entries - 1).bit_length() - 1)
        return (index ^ msb) % self.config.entries

    def index_for_slot(self, pc: int, slot: int) -> int:
        """PVT index used for a compare's predicate target ``slot`` (0 or 1)."""
        if slot not in (self.SLOT_FIRST, self.SLOT_SECOND):
            raise ValueError(f"invalid predicate slot {slot}")
        if self.config.split_pvt:
            half = max(1, self.config.entries // 2)
            base = fold_pc(pc, 24) % half
            return base + (half if slot == self.SLOT_SECOND else 0)
        if slot == self.SLOT_FIRST:
            return self._f1(pc)
        return self._f2(pc)

    def _local_key(self, pc: int, slot: int) -> int:
        # Distinguish the two targets' local histories without a second table.
        return pc + (slot << 1)

    def _combined_history(self, pc: int, slot: int, global_history: int) -> int:
        cfg = self.config
        global_part = global_history & ((1 << cfg.global_bits) - 1)
        local_part = self.local_histories.read(self._local_key(pc, slot))
        local_part &= (1 << cfg.local_bits) - 1
        return (local_part << cfg.global_bits) | global_part

    # ------------------------------------------------------------------
    def predict_slot(self, pc: int, slot: int, global_history: int) -> Tuple[bool, int]:
        """Predict one predicate target of the compare at ``pc``.

        Returns ``(predicted_value, raw_output)``.
        """
        row = self._pvt[self.index_for_slot(pc, slot)]
        output = perceptron_output(row, self._combined_history(pc, slot, global_history))
        return output >= 0, output

    def predict_compare(self, pc: int, global_history: int) -> Tuple[bool, bool]:
        """Predict both predicate targets of the compare at ``pc``."""
        first, _ = self.predict_slot(pc, self.SLOT_FIRST, global_history)
        second, _ = self.predict_slot(pc, self.SLOT_SECOND, global_history)
        return first, second

    def update_slot(self, pc: int, slot: int, global_history: int, outcome: bool) -> None:
        """Train the entry used for (``pc``, ``slot``) with the computed value."""
        cfg = self.config
        row = self._pvt[self.index_for_slot(pc, slot)]
        combined = self._combined_history(pc, slot, global_history)
        output = perceptron_output(row, combined)
        prediction = output >= 0
        if prediction != outcome or abs(output) <= cfg.theta:
            perceptron_train(row, combined, outcome, cfg.weight_min, cfg.weight_max)
        self.local_histories.update(self._local_key(pc, slot), outcome)

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add("pvt", cfg.entries * cfg.num_weights * cfg.weight_bits)
        report.add("local-history-table", self.local_histories.storage_bits())
        report.add("ghr", cfg.global_bits)
        return report
