"""TAGE-class branch predictor (Seznec & Michaud, JILP 2006).

A geometric-history tagged predictor usable as an alternative *second-level*
backend in any scheme (``second_level = "tage"`` on the scheme factories): a
bimodal base table plus a stack of partially-tagged tables indexed by
geometrically growing slices of the global history.  The longest-history
table whose tag matches provides the prediction; the next match (or the base
table) is the alternate prediction.  Per-entry usefulness counters arbitrate
allocation on mispredictions and are periodically decayed so stale entries
can be reclaimed.

Two deliberate departures from the original keep the structure inside this
code base's scheme contract:

* History is supplied *externally* by the scheme layer (like every other
  predictor here): indices and tags are pure functions of ``(pc, history)``,
  so a prediction and its later training with the same captured history
  always address the same entries regardless of what renamed in between.
  Geometric lengths are therefore capped at the scheme GHR width.
* Allocation is deterministic: on an allocation miss the candidate tables
  are scanned longest-history-first from a rotating start position, and if
  every candidate is useful, all candidate usefulness counters are decayed
  instead.  (The original flips a coin; a cache-keyed simulator cannot.)

Like :mod:`repro.predictors.gshare`, the predictor has two access paths over
one table state: a structured reference path and an optimized path (the
default, see :mod:`repro.perf.flags`) that inlines the table walk over the
backing lists.  Both paths share the same lists, so they are bit-identical
by construction; the hypothesis parity tests drive both with common random
branch streams — allocation and usefulness-decay edge cases included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.perf.flags import resolve_optimized
from repro.predictors.base import DirectionPredictor, PredictorSizeReport, fold_pc


@dataclass(frozen=True)
class TAGEConfig:
    """Geometry of a TAGE predictor.

    The defaults give a ~11 KB structure — deliberately an order of
    magnitude below the paper's 148 KB perceptron budget, because TAGE's
    selling point is accuracy per bit; the shootout scenario compares the
    two as-is and the size report keeps the comparison honest.
    """

    #: log2 entries of the bimodal base table (2-bit counters).
    base_bits: int = 12
    #: log2 entries of each tagged table.
    table_bits: int = 10
    #: Partial tag width of the tagged tables.
    tag_bits: int = 9
    #: Signed prediction counter width of the tagged tables.
    counter_bits: int = 3
    #: Usefulness counter width of the tagged tables.
    useful_bits: int = 2
    #: Geometric history lengths, shortest first.  The longest one bounds
    #: the GHR width a scheme must provide.
    history_lengths: Tuple[int, ...] = (5, 9, 15, 25, 44)
    #: Tagged-table updates between usefulness-column decays (halving).
    decay_period: int = 4096

    @property
    def history_bits(self) -> int:
        """GHR width the hosting scheme must maintain."""
        return max(self.history_lengths)

    def storage_bits(self) -> int:
        base = (1 << self.base_bits) * 2
        per_entry = self.tag_bits + self.counter_bits + self.useful_bits
        tagged = len(self.history_lengths) * (1 << self.table_bits) * per_entry
        return base + tagged + self.history_bits


def _fold_history(history: int, length: int, bits: int) -> int:
    """Fold the ``length`` newest history bits into a ``bits``-wide hash."""
    value = history & ((1 << length) - 1)
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class TAGEPredictor(DirectionPredictor):
    """Tagged geometric-history predictor with provider/altpred selection."""

    def __init__(
        self,
        config: Optional[TAGEConfig] = None,
        optimized: Optional[bool] = None,
    ) -> None:
        self.config = config or TAGEConfig()
        cfg = self.config
        if not cfg.history_lengths or list(cfg.history_lengths) != sorted(
            set(cfg.history_lengths)
        ):
            raise ValueError(
                "TAGE history lengths must be strictly increasing, got "
                f"{cfg.history_lengths!r}"
            )
        self.optimized = resolve_optimized(optimized)
        self.num_tables = len(cfg.history_lengths)
        self._base_entries = 1 << cfg.base_bits
        self._entries = 1 << cfg.table_bits
        self._index_mask = self._entries - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._ctr_max = (1 << (cfg.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (cfg.counter_bits - 1))
        self._u_max = (1 << cfg.useful_bits) - 1
        #: Base bimodal table, weakly not-taken (2-bit counters).
        self._base: List[int] = [1] * self._base_entries
        #: Tagged tables: parallel tag/counter/usefulness columns per table.
        self._tags: List[List[int]] = [[0] * self._entries for _ in range(self.num_tables)]
        self._ctrs: List[List[int]] = [[0] * self._entries for _ in range(self.num_tables)]
        self._useful: List[List[int]] = [[0] * self._entries for _ in range(self.num_tables)]
        #: Tagged-table update count, drives the periodic usefulness decay.
        self._update_count = 0
        #: Rotating start offset of the deterministic allocation scan.
        self._alloc_rotation = 0

    # ------------------------------------------------------------------
    # Index and tag hashes (pure functions of (pc, history))
    # ------------------------------------------------------------------
    def _base_index(self, pc: int) -> int:
        return fold_pc(pc, self.config.base_bits)

    def _index(self, pc: int, history: int, table: int) -> int:
        length = self.config.history_lengths[table]
        folded = _fold_history(history, length, self.config.table_bits)
        return (fold_pc(pc, self.config.table_bits) ^ folded ^ (table + 1)) & self._index_mask

    def _tag(self, pc: int, history: int, table: int) -> int:
        length = self.config.history_lengths[table]
        cfg = self.config
        folded = _fold_history(history, length, cfg.tag_bits)
        twisted = _fold_history(history, length, cfg.tag_bits - 1) << 1
        return (fold_pc(pc, cfg.tag_bits) ^ folded ^ twisted ^ (table + 1)) & self._tag_mask

    # ------------------------------------------------------------------
    # Lookup: provider / altpred selection
    # ------------------------------------------------------------------
    def _lookup(self, pc: int, history: int):
        """(provider_table|None, provider_index, pred, alt_pred, indices, tags).

        ``pred`` is the provider's direction (or the base prediction when no
        tag matches); ``alt_pred`` is the next matching table's direction (or
        the base prediction).  Indices and tags are returned for update-time
        reuse — they are pure functions of the arguments, so prediction and
        training with the same captured history address the same entries.
        """
        if self.optimized:
            # Optimized walk: local bindings, one pass, no helper calls.
            cfg = self.config
            table_bits = cfg.table_bits
            tag_bits = cfg.tag_bits
            pc_index = fold_pc(pc, table_bits)
            pc_tag = fold_pc(pc, tag_bits)
            index_mask = self._index_mask
            tag_mask = self._tag_mask
            lengths = cfg.history_lengths
            indices = []
            tags = []
            for table in range(self.num_tables):
                length = lengths[table]
                value = history & ((1 << length) - 1)
                folded_i = 0
                imask = index_mask
                while value:
                    folded_i ^= value & imask
                    value >>= table_bits
                value = history & ((1 << length) - 1)
                folded_t = 0
                while value:
                    folded_t ^= value & tag_mask
                    value >>= tag_bits
                value = history & ((1 << length) - 1)
                folded_h = 0
                half_mask = (1 << (tag_bits - 1)) - 1
                while value:
                    folded_h ^= value & half_mask
                    value >>= tag_bits - 1
                indices.append((pc_index ^ folded_i ^ (table + 1)) & index_mask)
                tags.append((pc_tag ^ folded_t ^ (folded_h << 1) ^ (table + 1)) & tag_mask)
        else:
            indices = [self._index(pc, history, t) for t in range(self.num_tables)]
            tags = [self._tag(pc, history, t) for t in range(self.num_tables)]

        base_pred = self._base[self._base_index(pc)] >= 2
        provider = None
        alt = None
        for table in range(self.num_tables - 1, -1, -1):
            if self._tags[table][indices[table]] == tags[table]:
                if provider is None:
                    provider = table
                else:
                    alt = table
                    break
        if provider is None:
            return None, 0, base_pred, base_pred, indices, tags
        pred = self._ctrs[provider][indices[provider]] >= 0
        if alt is None:
            alt_pred = base_pred
        else:
            alt_pred = self._ctrs[alt][indices[alt]] >= 0
        return provider, indices[provider], pred, alt_pred, indices, tags

    # ------------------------------------------------------------------
    def predict(self, pc: int, global_history: int) -> bool:
        _, _, pred, _, _, _ = self._lookup(pc, global_history)
        return pred

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        provider, p_index, pred, alt_pred, indices, tags = self._lookup(pc, global_history)
        mispredicted = pred != outcome

        # Usefulness: the provider proved (or disproved) its worth only when
        # it actually disagreed with the alternate prediction.
        if provider is not None and pred != alt_pred:
            useful = self._useful[provider]
            value = useful[p_index]
            if pred == outcome:
                if value < self._u_max:
                    useful[p_index] = value + 1
            elif value > 0:
                useful[p_index] = value - 1

        # Train the provider (tagged counter) or the base bimodal entry.
        if provider is not None:
            ctrs = self._ctrs[provider]
            value = ctrs[p_index]
            if outcome:
                if value < self._ctr_max:
                    ctrs[p_index] = value + 1
            elif value > self._ctr_min:
                ctrs[p_index] = value - 1
            self._update_count += 1
            if self._update_count % self.config.decay_period == 0:
                self._decay_usefulness()
        else:
            base = self._base
            index = self._base_index(pc)
            value = base[index]
            if outcome:
                if value < 3:
                    base[index] = value + 1
            elif value > 0:
                base[index] = value - 1

        # Allocate a longer-history entry on a misprediction.
        if mispredicted:
            start = 0 if provider is None else provider + 1
            if start < self.num_tables:
                self._allocate(start, indices, tags, outcome)

    def _allocate(
        self, start: int, indices: List[int], tags: List[int], outcome: bool
    ) -> None:
        """Claim one not-useful entry in a longer-history table.

        Candidates are scanned shortest-history-first from a rotating offset
        (deterministic stand-in for the original's randomized start); if
        every candidate is useful, their usefulness counters are all decayed
        so a persistent misprediction eventually frees a slot.
        """
        candidates = list(range(start, self.num_tables))
        rotation = self._alloc_rotation % len(candidates)
        self._alloc_rotation += 1
        for position in range(len(candidates)):
            table = candidates[(position + rotation) % len(candidates)]
            index = indices[table]
            if self._useful[table][index] == 0:
                self._tags[table][index] = tags[table]
                self._ctrs[table][index] = 0 if outcome else -1
                self._useful[table][index] = 0
                return
        for table in candidates:
            useful = self._useful[table]
            index = indices[table]
            if useful[index] > 0:
                useful[index] -= 1

    def _decay_usefulness(self) -> None:
        """Halve every usefulness counter (the periodic graceful reset)."""
        for useful in self._useful:
            for i, value in enumerate(useful):
                if value:
                    useful[i] = value >> 1

    # ------------------------------------------------------------------
    def table_state(self):
        """Full table state as nested tuples (parity tests)."""
        return (
            tuple(self._base),
            tuple(tuple(column) for column in self._tags),
            tuple(tuple(column) for column in self._ctrs),
            tuple(tuple(column) for column in self._useful),
            self._update_count,
            self._alloc_rotation,
        )

    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add("tage-base", self._base_entries * 2)
        per_entry = cfg.tag_bits + cfg.counter_bits + cfg.useful_bits
        report.add("tage-tagged", self.num_tables * self._entries * per_entry)
        report.add("tage-ghr", cfg.history_bits)
        return report


class TagePredicatePredictor:
    """A TAGE backend behind the predicate-predictor slot interface.

    The predicate scheme predicts up to two targets per compare
    (:class:`~repro.predictors.predicate_perceptron.PredicatePerceptronPredictor`'s
    ``predict_slot`` / ``update_slot`` / ``index_for_slot`` contract).  The
    adapter salts the compare PC per slot — slot 1 lands on the next aligned
    address, which every fold treats as a distinct static instruction — and
    exposes a stable per-(pc, slot) index for the confidence estimator.
    """

    SLOT_FIRST = 0
    SLOT_SECOND = 1

    def __init__(
        self,
        config: Optional[TAGEConfig] = None,
        optimized: Optional[bool] = None,
    ) -> None:
        self.tage = TAGEPredictor(config, optimized=optimized)
        self.config = self.tage.config
        #: Entry count the confidence estimator should be sized with (one
        #: counter per (base-table entry, slot) pair).
        self.confidence_entries = (1 << self.config.base_bits) * 2

    @staticmethod
    def _salted(pc: int, slot: int) -> int:
        return pc + (slot << 2)

    # ------------------------------------------------------------------
    def predict_slot(self, pc: int, slot: int, history: int) -> Tuple[bool, int]:
        prediction = self.tage.predict(self._salted(pc, slot), history)
        return prediction, 1 if prediction else -1

    def update_slot(self, pc: int, slot: int, history: int, outcome: bool) -> None:
        self.tage.update(self._salted(pc, slot), history, outcome)

    def index_for_slot(self, pc: int, slot: int) -> int:
        return (fold_pc(self._salted(pc, slot), self.config.base_bits) << 1) | slot

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        return self.tage.size_report()
