"""Routines: named units of control flow."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.isa.instructions import Instruction
from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph


class Routine:
    """A named, ordered collection of basic blocks with an entry block."""

    def __init__(self, name: str, blocks: Optional[List[BasicBlock]] = None) -> None:
        self.name = name
        self.blocks: List[BasicBlock] = list(blocks) if blocks else []
        self._cfg: Optional[ControlFlowGraph] = None

    # ------------------------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        self.blocks.append(block)
        self._cfg = None
        return block

    def block(self, label: str) -> BasicBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block labelled {label!r} in routine {self.name!r}")

    def block_index(self, label: str) -> int:
        for index, blk in enumerate(self.blocks):
            if blk.label == label:
                return index
        raise KeyError(f"no block labelled {label!r} in routine {self.name!r}")

    def remove_block(self, label: str) -> None:
        self.blocks = [b for b in self.blocks if b.label != label]
        self._cfg = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"routine {self.name!r} has no blocks")
        return self.blocks[0]

    @property
    def cfg(self) -> ControlFlowGraph:
        """The routine's CFG (rebuilt lazily after structural changes)."""
        if self._cfg is None:
            self._cfg = ControlFlowGraph(self.blocks)
        return self._cfg

    def invalidate_cfg(self) -> None:
        """Force the CFG to be rebuilt (call after mutating blocks)."""
        self._cfg = None

    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """Iterate over all instructions in layout order."""
        for block in self.blocks:
            yield from block.instructions

    @property
    def size(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __repr__(self) -> str:
        return f"<Routine {self.name}: {len(self.blocks)} blocks, {self.size} instructions>"
