"""The top-level program container and address layout.

A :class:`Program` owns a set of routines, an entry routine, and a *data
segment* describing the initial contents of memory.  :meth:`Program.layout`
assigns program-counter addresses to every instruction — the addresses branch
predictors and the predicate predictor index with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.isa.instructions import Instruction
from repro.program.routine import Routine

#: Byte distance between consecutive instruction slots in the laid-out image.
#: IA-64 packs three 41-bit instructions in a 16-byte bundle; we use a
#: fixed per-slot stride which keeps addresses unique and realistically sparse.
INSTRUCTION_STRIDE = 4

#: Base address of the text segment.
TEXT_BASE = 0x4000_0000

#: Base address of the data segment.
DATA_BASE = 0x6000_0000


@dataclass
class DataSegment:
    """Initial memory contents: a dictionary of word-addressed values.

    Addresses are byte addresses; values are signed integers stored in
    8-byte words.  The workload generators populate arrays here and the
    emulator's memory image is initialised from it.
    """

    words: Dict[int, int] = field(default_factory=dict)

    def store_array(self, base: int, values: List[int], stride: int = 8) -> None:
        """Store ``values`` as consecutive words starting at ``base``."""
        for i, value in enumerate(values):
            self.words[base + i * stride] = int(value)

    def __len__(self) -> int:
        return len(self.words)


class Program:
    """A complete program: routines + data + entry point."""

    def __init__(self, name: str, entry: str = "main") -> None:
        self.name = name
        self.entry_name = entry
        self.routines: Dict[str, Routine] = {}
        self.data = DataSegment()
        #: True once :meth:`layout` has assigned addresses.
        self.laid_out = False
        #: Free-form metadata (workload traits, compilation flags, ...).
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    def add_routine(self, routine: Routine) -> Routine:
        if routine.name in self.routines:
            raise ValueError(f"duplicate routine {routine.name!r}")
        self.routines[routine.name] = routine
        self.laid_out = False
        return routine

    def routine(self, name: str) -> Routine:
        return self.routines[name]

    @property
    def entry_routine(self) -> Routine:
        return self.routines[self.entry_name]

    def instructions(self) -> Iterator[Instruction]:
        for routine in self.routines.values():
            yield from routine.instructions()

    @property
    def size(self) -> int:
        return sum(r.size for r in self.routines.values())

    # ------------------------------------------------------------------
    def layout(self, text_base: int = TEXT_BASE) -> None:
        """Assign addresses to every block and instruction.

        Routines are placed sequentially in insertion order; blocks within a
        routine in layout order; instructions at a fixed stride.  The layout
        is deterministic so predictor indexing is reproducible.
        """
        address = text_base
        for routine in self.routines.values():
            for block in routine.blocks:
                block.address = address
                for inst in block.instructions:
                    inst.address = address
                    address += INSTRUCTION_STRIDE
                # Align the next block so addresses do not depend on whether
                # earlier blocks grew by a couple of instructions after
                # compilation — keeps cross-binary comparisons stable.
                address = _align(address, 64)
            address = _align(address, 256)
        self.laid_out = True

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<Program {self.name}: {len(self.routines)} routines, "
            f"{self.size} instructions>"
        )


def _align(value: int, alignment: int) -> int:
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + (alignment - remainder)
