"""Basic blocks: straight-line instruction sequences with a single entry.

A block may contain *predicated* control transfers in its interior only after
if-conversion (region branches); before if-conversion the only branch in a
block is its terminator.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.isa.branches import BranchInstruction
from repro.isa.instructions import Instruction


class BasicBlock:
    """A labelled, ordered list of instructions."""

    __slots__ = ("label", "instructions", "address", "annotations")

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: List[Instruction] = []
        #: Base address assigned at program layout.
        self.address: Optional[int] = None
        #: Free-form annotations used by compiler passes and generators.
        self.annotations: dict = {}

    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Append ``inst`` to the block and record its position."""
        inst.block_label = self.label
        inst.slot = len(self.instructions)
        self.instructions.append(inst)
        return inst

    def extend(self, instructions) -> None:
        for inst in instructions:
            self.append(inst)

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert ``inst`` at ``index`` and renumber slots."""
        self.instructions.insert(index, inst)
        self._renumber()
        return inst

    def remove(self, inst: Instruction) -> None:
        """Remove ``inst`` from the block and renumber slots."""
        self.instructions.remove(inst)
        self._renumber()

    def replace_instructions(self, instructions: List[Instruction]) -> None:
        """Replace the whole instruction list (used by scheduling passes)."""
        self.instructions = []
        for inst in instructions:
            self.append(inst)

    def _renumber(self) -> None:
        for slot, inst in enumerate(self.instructions):
            inst.block_label = self.label
            inst.slot = slot

    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Optional[BranchInstruction]:
        """The block's final branch, if it ends in one."""
        if self.instructions and isinstance(self.instructions[-1], BranchInstruction):
            return self.instructions[-1]
        return None

    @property
    def branches(self) -> List[BranchInstruction]:
        """All branches in the block (interior region branches included)."""
        return [i for i in self.instructions if isinstance(i, BranchInstruction)]

    @property
    def falls_through(self) -> bool:
        """True when control may continue to the next block in layout order."""
        term = self.terminator
        if term is None:
            return True
        if term.kind.value == "uncond" and not term.is_predicated:
            return False
        if term.kind.value == "ret" and not term.is_predicated:
            return False
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instructions)} instructions>"
