"""Program representation: basic blocks, control-flow graphs, routines.

The compiler (:mod:`repro.compiler`), the functional emulator
(:mod:`repro.emulator`) and the workload generators
(:mod:`repro.workloads`) all operate on this representation.
"""

from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph, Edge
from repro.program.routine import Routine
from repro.program.program import Program, DataSegment
from repro.program.builder import RoutineBuilder, ProgramBuilder
from repro.program.validate import validate_program, ValidationError

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Edge",
    "Routine",
    "Program",
    "DataSegment",
    "RoutineBuilder",
    "ProgramBuilder",
    "validate_program",
    "ValidationError",
]
