"""Builder DSL for constructing programs.

The workload generators (:mod:`repro.workloads`) and the tests build programs
through these helpers rather than instantiating instruction classes directly,
which keeps program construction readable::

    pb = ProgramBuilder("example")
    data = pb.array("input", [3, 1, 4, 1, 5])
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(10), data)
    rb.load(GR(11), GR(10))
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(11), 2)
    rb.br_cond("bigger", qp=PR(6))
    ...
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.compare import CompareInstruction, CompareRelation, CompareType
from repro.isa.instructions import (
    ALUInstruction,
    FPInstruction,
    Instruction,
    LoadInstruction,
    MoveInstruction,
    NopInstruction,
    StoreInstruction,
)
from repro.isa.opcodes import Opcode
from repro.isa.operands import Label
from repro.isa.registers import P0, Register
from repro.program.basic_block import BasicBlock
from repro.program.program import DATA_BASE, Program
from repro.program.routine import Routine


class RoutineBuilder:
    """Builds one routine block by block."""

    def __init__(self, routine: Routine) -> None:
        self.routine = routine
        self._current: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        """Start (or switch to) the block with the given label."""
        for existing in self.routine.blocks:
            if existing.label == label:
                self._current = existing
                return existing
        new_block = BasicBlock(label)
        self.routine.add_block(new_block)
        self._current = new_block
        return new_block

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block: call block(label) first")
        return self._current

    def emit(self, inst: Instruction) -> Instruction:
        """Append an already-constructed instruction to the current block."""
        return self.current.append(inst)

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------
    def _alu(self, opcode: Opcode, dest, src1, src2, qp) -> Instruction:
        return self.emit(ALUInstruction(opcode, dest, src1, src2, qp=qp))

    def add(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.ADD, dest, src1, src2, qp)

    def addi(self, dest, src1, imm: int, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.ADDI, dest, src1, imm, qp)

    def sub(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.SUB, dest, src1, src2, qp)

    def and_(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.AND, dest, src1, src2, qp)

    def andi(self, dest, src1, imm: int, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.ANDI, dest, src1, imm, qp)

    def or_(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.OR, dest, src1, src2, qp)

    def xor(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.XOR, dest, src1, src2, qp)

    def xori(self, dest, src1, imm: int, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.XORI, dest, src1, imm, qp)

    def shl(self, dest, src1, amount, qp: Register = P0) -> Instruction:
        opcode = Opcode.SHLI if isinstance(amount, int) else Opcode.SHL
        return self._alu(opcode, dest, src1, amount, qp)

    def shr(self, dest, src1, amount, qp: Register = P0) -> Instruction:
        opcode = Opcode.SHRI if isinstance(amount, int) else Opcode.SHR
        return self._alu(opcode, dest, src1, amount, qp)

    def mul(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._alu(Opcode.MUL, dest, src1, src2, qp)

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def mov(self, dest: Register, src, qp: Register = P0) -> Instruction:
        return self.emit(MoveInstruction(dest, src, qp=qp))

    def movi(self, dest: Register, value: int, qp: Register = P0) -> Instruction:
        return self.emit(MoveInstruction(dest, value, qp=qp))

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------
    def _fp(self, opcode: Opcode, dest, srcs, qp) -> Instruction:
        return self.emit(FPInstruction(opcode, dest, srcs, qp=qp))

    def fadd(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._fp(Opcode.FADD, dest, [src1, src2], qp)

    def fsub(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._fp(Opcode.FSUB, dest, [src1, src2], qp)

    def fmul(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._fp(Opcode.FMUL, dest, [src1, src2], qp)

    def fma(self, dest, src1, src2, src3, qp: Register = P0) -> Instruction:
        return self._fp(Opcode.FMA, dest, [src1, src2, src3], qp)

    def fdiv(self, dest, src1, src2, qp: Register = P0) -> Instruction:
        return self._fp(Opcode.FDIV, dest, [src1, src2], qp)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(
        self,
        dest: Register,
        base: Register,
        offset: int = 0,
        qp: Register = P0,
        floating: bool = False,
    ) -> Instruction:
        return self.emit(LoadInstruction(dest, base, offset, qp=qp, floating=floating))

    def store(
        self,
        value: Register,
        base: Register,
        offset: int = 0,
        qp: Register = P0,
        floating: bool = False,
    ) -> Instruction:
        return self.emit(StoreInstruction(value, base, offset, qp=qp, floating=floating))

    # ------------------------------------------------------------------
    # Compares
    # ------------------------------------------------------------------
    def cmp(
        self,
        relation: CompareRelation,
        pt: Register,
        pf: Register,
        src1,
        src2,
        ctype: CompareType = CompareType.NONE,
        qp: Register = P0,
        floating: bool = False,
    ) -> CompareInstruction:
        inst = CompareInstruction(
            relation, pt, pf, src1, src2, ctype=ctype, qp=qp, floating=floating
        )
        self.emit(inst)
        return inst

    # ------------------------------------------------------------------
    # Branches
    # ------------------------------------------------------------------
    def br_cond(self, target: str, qp: Register) -> BranchInstruction:
        inst = BranchInstruction(BranchKind.COND, Label(target), qp=qp)
        self.emit(inst)
        return inst

    def br(self, target: str, qp: Register = P0) -> BranchInstruction:
        inst = BranchInstruction(BranchKind.UNCOND, Label(target), qp=qp)
        self.emit(inst)
        return inst

    def br_call(self, callee: str, qp: Register = P0) -> BranchInstruction:
        inst = BranchInstruction(BranchKind.CALL, callee=callee, qp=qp)
        self.emit(inst)
        return inst

    def br_ret(self, qp: Register = P0) -> BranchInstruction:
        inst = BranchInstruction(BranchKind.RET, qp=qp)
        self.emit(inst)
        return inst

    def nop(self, qp: Register = P0) -> Instruction:
        return self.emit(NopInstruction(qp=qp))


class ProgramBuilder:
    """Builds a whole program: routines plus the data segment."""

    def __init__(self, name: str, entry: str = "main") -> None:
        self.program = Program(name, entry=entry)
        self._data_cursor = DATA_BASE
        self._arrays: Dict[str, int] = {}

    def routine(self, name: str) -> RoutineBuilder:
        """Create a new routine and return its builder."""
        routine = Routine(name)
        self.program.add_routine(routine)
        return RoutineBuilder(routine)

    # ------------------------------------------------------------------
    def array(self, name: str, values: Sequence[int], stride: int = 8) -> int:
        """Place an array in the data segment and return its base address."""
        if name in self._arrays:
            raise ValueError(f"duplicate array name {name!r}")
        base = self._data_cursor
        self.program.data.store_array(base, list(values), stride=stride)
        self._arrays[name] = base
        self._data_cursor = base + max(len(values), 1) * stride
        # Keep arrays apart so strided accesses from different arrays do not
        # accidentally overlap and so cache-set behaviour is interesting.
        self._data_cursor += 64
        return base

    def array_base(self, name: str) -> int:
        return self._arrays[name]

    # ------------------------------------------------------------------
    def finish(self, layout: bool = True) -> Program:
        """Finalize the program (optionally laying out addresses)."""
        if layout:
            self.program.layout()
        return self.program
