"""Control-flow graph over a routine's basic blocks.

Edges are derived from block terminators and layout order:

* a conditional branch contributes a *taken* edge to its target and a
  *fall-through* edge to the next block in layout order;
* an unconditional, unpredicated branch contributes only its taken edge;
* a return contributes no intraprocedural edge;
* a block without a terminator falls through to the next block.

The CFG also provides the small amount of structural analysis the
if-conversion pass needs: single-entry/single-exit *hammock* and *diamond*
region detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.isa.branches import BranchInstruction, BranchKind
from repro.program.basic_block import BasicBlock


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge."""

    src: str
    dst: str
    kind: str  # "taken" | "fallthrough" | "call-return"

    def __repr__(self) -> str:
        return f"{self.src} -[{self.kind}]-> {self.dst}"


class ControlFlowGraph:
    """CFG over an ordered list of basic blocks."""

    def __init__(self, blocks: Sequence[BasicBlock]) -> None:
        self.blocks: List[BasicBlock] = list(blocks)
        self.block_map: Dict[str, BasicBlock] = {b.label: b for b in self.blocks}
        if len(self.block_map) != len(self.blocks):
            raise ValueError("duplicate basic block labels in routine")
        self._succ: Dict[str, List[Edge]] = {}
        self._pred: Dict[str, List[Edge]] = {}
        self._build_edges()

    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        self._succ = {b.label: [] for b in self.blocks}
        self._pred = {b.label: [] for b in self.blocks}
        for index, block in enumerate(self.blocks):
            next_label = (
                self.blocks[index + 1].label if index + 1 < len(self.blocks) else None
            )
            for edge in self._edges_for_block(block, next_label):
                self._succ[edge.src].append(edge)
                self._pred[edge.dst].append(edge)

    def _edges_for_block(
        self, block: BasicBlock, next_label: Optional[str]
    ) -> List[Edge]:
        edges: List[Edge] = []
        term = block.terminator
        if term is not None and term.kind in (BranchKind.COND, BranchKind.UNCOND):
            if term.target is not None and term.target.name in self.block_map:
                edges.append(Edge(block.label, term.target.name, "taken"))
        if term is not None and term.kind is BranchKind.CALL:
            # Calls return to the fall-through block.
            if next_label is not None:
                edges.append(Edge(block.label, next_label, "call-return"))
            return edges
        if block.falls_through and next_label is not None:
            edges.append(Edge(block.label, next_label, "fallthrough"))
        return edges

    def rebuild(self) -> None:
        """Recompute edges after a pass mutated blocks or terminators."""
        self.block_map = {b.label: b for b in self.blocks}
        self._build_edges()

    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        return self.block_map[label]

    def successors(self, label: str) -> List[str]:
        return [e.dst for e in self._succ[label]]

    def predecessors(self, label: str) -> List[str]:
        return [e.src for e in self._pred[label]]

    def out_edges(self, label: str) -> List[Edge]:
        return list(self._succ[label])

    def in_edges(self, label: str) -> List[Edge]:
        return list(self._pred[label])

    def taken_successor(self, label: str) -> Optional[str]:
        for edge in self._succ[label]:
            if edge.kind == "taken":
                return edge.dst
        return None

    def fallthrough_successor(self, label: str) -> Optional[str]:
        for edge in self._succ[label]:
            if edge.kind in ("fallthrough", "call-return"):
                return edge.dst
        return None

    # ------------------------------------------------------------------
    # Structural region detection used by if-conversion
    # ------------------------------------------------------------------
    def diamond_region(self, label: str) -> Optional["DiamondRegion"]:
        """Detect an if-then-else *diamond* (or if-then *hammock*) rooted at ``label``.

        A diamond is: a block ending in a conditional branch whose two
        successors are distinct single-predecessor blocks that both fall into
        (or jump to) the same join block.  A hammock is the degenerate form
        where one successor *is* the join block.

        Side blocks may end in an unpredicated unconditional branch to the
        join (the classic compiled shape of an if-then-else); any other
        internal branch disqualifies the region.  Returns ``None`` when the
        shape does not match.
        """
        block = self.block_map.get(label)
        if block is None:
            return None
        term = block.terminator
        if term is None or term.kind is not BranchKind.COND:
            return None
        taken = self.taken_successor(label)
        fall = self.fallthrough_successor(label)
        if taken is None or fall is None or taken == fall:
            return None

        def single_succ(lbl: str) -> Optional[str]:
            succ = self.successors(lbl)
            return succ[0] if len(succ) == 1 else None

        # Hammock: one side is a single block joining at the other successor.
        for then_label, join_label, on_taken in (
            (fall, taken, False),
            (taken, fall, True),
        ):
            if (
                single_succ(then_label) == join_label
                and len(self.predecessors(then_label)) == 1
                and self._side_block_convertible(then_label)
            ):
                return DiamondRegion(
                    head=label,
                    then_side=then_label,
                    else_side=None,
                    join=join_label,
                    branch=term,
                    then_on_taken_path=on_taken,
                )
        # Full diamond: both successors are single-pred blocks joining at the
        # same third block.
        join_taken = single_succ(taken)
        join_fall = single_succ(fall)
        if (
            join_taken is not None
            and join_taken == join_fall
            and len(self.predecessors(taken)) == 1
            and len(self.predecessors(fall)) == 1
            and self._side_block_convertible(taken)
            and self._side_block_convertible(fall)
        ):
            return DiamondRegion(
                head=label,
                then_side=fall,
                else_side=taken,
                join=join_taken,
                branch=term,
                then_on_taken_path=False,
            )
        return None

    def _side_block_convertible(self, label: str) -> bool:
        """A side block may contain predicated (region) branches anywhere and
        at most one unpredicated branch, which must be its unconditional
        terminator."""
        block = self.block(label)
        unpredicated = [b for b in block.branches if not b.is_predicated]
        if not unpredicated:
            return True
        if len(unpredicated) > 1:
            return False
        term = block.terminator
        return term is unpredicated[0] and term.kind is BranchKind.UNCOND

    def escape_hammock(self, label: str) -> Optional["EscapeRegion"]:
        """Detect an *escape hammock* rooted at ``label``.

        Shape: a conditional branch whose taken target is the continuation,
        while the fall-through side is a single-predecessor block ending in
        an unpredicated return or unconditional jump that leaves the region
        (Figure 1a's shape, where the escape side ends in ``br.ret``).
        If-converting such a region turns the escaping branch into a guarded
        *region branch* — the phenomenon Figure 1b illustrates.
        """
        block = self.block_map.get(label)
        if block is None:
            return None
        term = block.terminator
        if term is None or term.kind is not BranchKind.COND:
            return None
        taken = self.taken_successor(label)
        fall = self.fallthrough_successor(label)
        if taken is None or fall is None or taken == fall:
            return None
        escape = self.block(fall)
        if len(self.predecessors(fall)) != 1:
            return None
        escape_term = escape.terminator
        if escape_term is None or escape_term.is_predicated:
            return None
        if escape_term.kind is BranchKind.RET:
            pass
        elif escape_term.kind is BranchKind.UNCOND:
            if escape_term.target is not None and escape_term.target.name == taken:
                return None  # ordinary hammock, not an escape
            # If the jump target is where the taken path also ends up, this
            # is an ordinary diamond whose sides re-join, not an escape.
            taken_succ = self.successors(taken)
            if (
                escape_term.target is not None
                and len(taken_succ) == 1
                and escape_term.target.name == taken_succ[0]
            ):
                return None
        else:
            return None
        interior = escape.instructions[:-1]
        if any(isinstance(i, BranchInstruction) and not i.is_predicated for i in interior):
            return None
        return EscapeRegion(
            head=label,
            escape=fall,
            continuation=taken,
            branch=term,
        )

    def reachable_blocks(self) -> List[str]:
        """Labels of blocks reachable from the entry, in DFS order."""
        seen: List[str] = []
        seen_set = set()
        stack = [self.entry.label]
        while stack:
            label = stack.pop()
            if label in seen_set:
                continue
            seen_set.add(label)
            seen.append(label)
            for succ in reversed(self.successors(label)):
                if succ not in seen_set:
                    stack.append(succ)
        return seen

    def __repr__(self) -> str:
        return f"<ControlFlowGraph {len(self.blocks)} blocks>"


@dataclass
class DiamondRegion:
    """A single-entry if-then(-else) region eligible for if-conversion.

    For a full diamond, ``then_side`` is the fall-through (not-taken) block
    and ``else_side`` the taken block.  For a hammock, ``else_side`` is
    ``None`` and ``then_on_taken_path`` records which path the single side
    block lies on.  ``join`` is the block where the paths merge.
    """

    head: str
    then_side: str
    else_side: Optional[str]
    join: str
    branch: BranchInstruction
    then_on_taken_path: bool = False

    @property
    def side_labels(self) -> List[str]:
        labels = [self.then_side]
        if self.else_side is not None:
            labels.append(self.else_side)
        return labels


@dataclass
class EscapeRegion:
    """A hammock whose side block escapes the region (return or jump out)."""

    head: str
    escape: str
    continuation: str
    branch: BranchInstruction
