"""Program validation.

The validator catches the structural mistakes that are easy to make when
generating programs or writing compiler passes, and that would otherwise show
up as confusing emulator misbehaviour:

* branch targets that do not resolve to a block in the same routine;
* calls to routines that do not exist;
* unpredicated branches in the middle of a basic block (only if-converted
  *region branches* may appear in block interiors, and they must be guarded);
* routines whose last reachable block can fall off the end of the routine;
* instructions that write hard-wired registers (other than compares using
  ``p0`` as a don't-care target).
"""

from __future__ import annotations

from typing import List

from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.compare import CompareInstruction
from repro.isa.registers import RegisterKind
from repro.program.program import Program


class ValidationError(Exception):
    """Raised when a program fails validation."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("\n".join(problems))
        self.problems = problems


def validate_program(program: Program) -> None:
    """Validate ``program``; raise :class:`ValidationError` on problems."""
    problems: List[str] = []
    if program.entry_name not in program.routines:
        problems.append(f"entry routine {program.entry_name!r} does not exist")

    for routine in program.routines.values():
        labels = {block.label for block in routine.blocks}
        if not routine.blocks:
            problems.append(f"routine {routine.name!r} has no blocks")
            continue
        for block in routine.blocks:
            for index, inst in enumerate(block.instructions):
                where = f"{routine.name}/{block.label}[{index}]"
                if isinstance(inst, BranchInstruction):
                    _check_branch(inst, index, block, labels, program, where, problems)
                else:
                    _check_non_branch(inst, where, problems)
        last = routine.blocks[-1]
        if last.falls_through and _block_reachable(routine, last.label):
            problems.append(
                f"routine {routine.name!r}: final block {last.label!r} can fall "
                f"off the end of the routine"
            )

    if problems:
        raise ValidationError(problems)


def _check_branch(inst, index, block, labels, program, where, problems) -> None:
    is_last = index == len(block.instructions) - 1
    if not is_last and not inst.is_predicated and inst.kind is not BranchKind.CALL:
        # Calls return to the following instruction, so they may legally sit
        # in the middle of a block; any other unpredicated control transfer
        # must terminate its block.
        problems.append(
            f"{where}: unpredicated branch in the middle of a basic block"
        )
    if inst.kind in (BranchKind.COND, BranchKind.UNCOND):
        if inst.target is None:
            problems.append(f"{where}: branch without a target")
        elif inst.target.name not in labels:
            problems.append(
                f"{where}: branch target {inst.target.name!r} is not a block "
                f"of this routine"
            )
    if inst.kind is BranchKind.CALL:
        if inst.callee is None:
            problems.append(f"{where}: call without a callee")
        elif inst.callee not in program.routines:
            problems.append(f"{where}: call to unknown routine {inst.callee!r}")


def _check_non_branch(inst, where, problems) -> None:
    for dest in inst.dests:
        if dest.is_hardwired:
            # Compares may legitimately name p0 as a don't-care target.
            if isinstance(inst, CompareInstruction) and dest.kind is RegisterKind.PREDICATE:
                continue
            problems.append(f"{where}: instruction writes hard-wired register {dest}")


def _block_reachable(routine, label: str) -> bool:
    return label in routine.cfg.reachable_blocks()
