"""repro — a reproduction of "Improving Branch Prediction and Predicated
Execution in Out-of-Order Processors" (Quiñones, Parcerisa, González;
HPCA 2007).

The package is organised as the paper's system is:

* :mod:`repro.isa`, :mod:`repro.program`, :mod:`repro.compiler`,
  :mod:`repro.workloads`, :mod:`repro.emulator`, :mod:`repro.memory`,
  :mod:`repro.pipeline`, :mod:`repro.predictors` — the substrates
  (a predicated compare-branch ISA, an if-converting compiler, synthetic
  SPEC2000-like workloads, a functional emulator, the memory hierarchy, the
  out-of-order pipeline and the raw predictor structures);
* :mod:`repro.core` — the paper's contribution: the predicate-prediction
  branch-handling scheme (and the baselines it is compared with);
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the evaluation;
* :mod:`repro.stats` — statistics and reporting.

Quick start::

    from repro.experiments import FAST_PROFILE, run_figure6

    result = run_figure6(profile=FAST_PROFILE)
    print(result.render())
"""

__version__ = "1.0.0"

__all__ = [
    "isa",
    "program",
    "compiler",
    "workloads",
    "emulator",
    "memory",
    "predictors",
    "pipeline",
    "core",
    "stats",
    "experiments",
    "__version__",
]
