"""Operand model: registers, immediates and labels.

Instruction sources are either :class:`~repro.isa.registers.Register`
instances, :class:`Immediate` constants, or :class:`Label` references to
basic blocks (used only by branches before address layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.isa.registers import Register


@dataclass(frozen=True)
class Immediate:
    """A signed integer immediate operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"imm({self.value})"


@dataclass(frozen=True)
class Label:
    """A symbolic reference to a basic block, resolved at layout time."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"label({self.name})"


#: Anything that may appear as an instruction source operand.
Operand = Union[Register, Immediate, Label]


def as_operand(value: Union[Operand, int]) -> Operand:
    """Coerce ``value`` into an operand.

    Plain integers are wrapped into :class:`Immediate`; registers and labels
    pass through unchanged.
    """
    if isinstance(value, int):
        return Immediate(value)
    if isinstance(value, (Register, Immediate, Label)):
        return value
    raise TypeError(f"cannot use {value!r} as an instruction operand")
