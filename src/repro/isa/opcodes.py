"""Opcode definitions and static opcode metadata.

Every opcode carries:

* an :class:`OpClass` describing its broad category (used by decode, the
  issue queues and the statistics machinery);
* the :class:`FunctionalUnitClass` it executes on;
* its execution latency in cycles (Table 1 class latencies).

The table is intentionally small — it contains exactly the operations the
synthetic SPEC2000-like workloads and the compiler need — but it is complete
in the sense that nothing else in the code base hard-codes opcode knowledge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class OpClass(enum.Enum):
    """Broad instruction categories used by decode and the issue queues."""

    ALU = "alu"
    MUL = "mul"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    COMPARE = "compare"
    BRANCH = "branch"
    MOVE = "move"
    NOP = "nop"


class FunctionalUnitClass(enum.Enum):
    """Functional unit pools of the modelled core."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP_UNIT = "fp_unit"
    LOAD_PORT = "load_port"
    STORE_PORT = "store_port"
    BRANCH_UNIT = "branch_unit"


class Opcode(enum.Enum):
    """Concrete operations of the ISA."""

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    # Integer multiply / divide-ish (long latency integer)
    MUL = "mul"
    # Moves
    MOV = "mov"
    MOVI = "movi"
    MOV_TO_BR = "mov_to_br"
    # Floating point (modelled on the FP unit with longer latency)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMA = "fma"
    FDIV = "fdiv"
    FMOV = "fmov"
    # Memory
    LD = "ld"
    ST = "st"
    LDF = "ldf"
    STF = "stf"
    # Compare (integer and floating point flavours)
    CMP = "cmp"
    FCMP = "fcmp"
    # Branches
    BR_COND = "br.cond"
    BR_UNCOND = "br"
    BR_CALL = "br.call"
    BR_RET = "br.ret"
    # No-operation
    NOP = "nop"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    opclass: OpClass
    unit: FunctionalUnitClass
    latency: int
    writes_general: bool = False
    writes_predicate: bool = False
    writes_float: bool = False
    is_control: bool = False


_INT1 = FunctionalUnitClass.INT_ALU
_MUL = FunctionalUnitClass.INT_MUL
_FP = FunctionalUnitClass.FP_UNIT
_LD = FunctionalUnitClass.LOAD_PORT
_ST = FunctionalUnitClass.STORE_PORT
_BRU = FunctionalUnitClass.BRANCH_UNIT


OPCODE_INFO: Dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.SUB: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.AND: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.OR: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.XOR: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.SHL: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.SHR: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.ADDI: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.ANDI: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.ORI: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.XORI: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.SHLI: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.SHRI: OpcodeInfo(OpClass.ALU, _INT1, 1, writes_general=True),
    Opcode.MUL: OpcodeInfo(OpClass.MUL, _MUL, 3, writes_general=True),
    Opcode.MOV: OpcodeInfo(OpClass.MOVE, _INT1, 1, writes_general=True),
    Opcode.MOVI: OpcodeInfo(OpClass.MOVE, _INT1, 1, writes_general=True),
    Opcode.MOV_TO_BR: OpcodeInfo(OpClass.MOVE, _INT1, 1),
    Opcode.FADD: OpcodeInfo(OpClass.FP, _FP, 4, writes_float=True),
    Opcode.FSUB: OpcodeInfo(OpClass.FP, _FP, 4, writes_float=True),
    Opcode.FMUL: OpcodeInfo(OpClass.FP, _FP, 4, writes_float=True),
    Opcode.FMA: OpcodeInfo(OpClass.FP, _FP, 4, writes_float=True),
    Opcode.FDIV: OpcodeInfo(OpClass.FP, _FP, 12, writes_float=True),
    Opcode.FMOV: OpcodeInfo(OpClass.FP, _FP, 1, writes_float=True),
    Opcode.LD: OpcodeInfo(OpClass.LOAD, _LD, 2, writes_general=True),
    Opcode.LDF: OpcodeInfo(OpClass.LOAD, _LD, 2, writes_float=True),
    Opcode.ST: OpcodeInfo(OpClass.STORE, _ST, 1),
    Opcode.STF: OpcodeInfo(OpClass.STORE, _ST, 1),
    Opcode.CMP: OpcodeInfo(OpClass.COMPARE, _INT1, 1, writes_predicate=True),
    Opcode.FCMP: OpcodeInfo(OpClass.COMPARE, _FP, 2, writes_predicate=True),
    Opcode.BR_COND: OpcodeInfo(OpClass.BRANCH, _BRU, 1, is_control=True),
    Opcode.BR_UNCOND: OpcodeInfo(OpClass.BRANCH, _BRU, 1, is_control=True),
    Opcode.BR_CALL: OpcodeInfo(OpClass.BRANCH, _BRU, 1, is_control=True),
    Opcode.BR_RET: OpcodeInfo(OpClass.BRANCH, _BRU, 1, is_control=True),
    Opcode.NOP: OpcodeInfo(OpClass.NOP, _INT1, 1),
}


def opcode_info(opcode: Opcode) -> OpcodeInfo:
    """Return the static metadata of ``opcode``."""
    return OPCODE_INFO[opcode]
