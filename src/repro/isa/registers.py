"""Register model of the predicated ISA.

The register files mirror the IA-64 application architecture at the level of
detail the paper's mechanisms require:

* ``r0``–``r127`` general registers, with ``r0`` hard-wired to zero.
* ``p0``–``p63`` one-bit predicate registers, with ``p0`` hard-wired to true.
  Writes to ``p0`` are silently discarded, which matters for compares whose
  second destination is ``p0`` (only one useful prediction is needed — see
  section 3.3 of the paper).
* ``b0``–``b7`` branch registers used by indirect branches and returns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_GENERAL_REGISTERS = 128
NUM_PREDICATE_REGISTERS = 64
NUM_BRANCH_REGISTERS = 8


class RegisterKind(enum.Enum):
    """The architectural register files defined by the ISA."""

    GENERAL = "r"
    PREDICATE = "p"
    BRANCH = "b"
    FLOAT = "f"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterKind.{self.name}"


_FILE_SIZES = {
    RegisterKind.GENERAL: NUM_GENERAL_REGISTERS,
    RegisterKind.PREDICATE: NUM_PREDICATE_REGISTERS,
    RegisterKind.BRANCH: NUM_BRANCH_REGISTERS,
    RegisterKind.FLOAT: NUM_GENERAL_REGISTERS,
}


@dataclass(frozen=True, order=True)
class Register:
    """An architectural register: a (kind, index) pair.

    Instances are immutable and hashable so they can be used as dictionary
    keys throughout the compiler, emulator and the rename stage.
    """

    kind: RegisterKind
    index: int

    def __post_init__(self) -> None:
        limit = _FILE_SIZES[self.kind]
        if not 0 <= self.index < limit:
            raise ValueError(
                f"register index {self.index} out of range for "
                f"{self.kind.name.lower()} file (0..{limit - 1})"
            )

    @property
    def is_hardwired(self) -> bool:
        """True for registers whose value can never change (``r0``, ``p0``)."""
        return self.index == 0 and self.kind in (
            RegisterKind.GENERAL,
            RegisterKind.PREDICATE,
        )

    @property
    def name(self) -> str:
        return f"{self.kind.value}{self.index}"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return self.name


def GR(index: int) -> Register:
    """Return the general register ``r<index>``."""
    return Register(RegisterKind.GENERAL, index)


def PR(index: int) -> Register:
    """Return the predicate register ``p<index>``."""
    return Register(RegisterKind.PREDICATE, index)


def BR(index: int) -> Register:
    """Return the branch register ``b<index>``."""
    return Register(RegisterKind.BRANCH, index)


def FR(index: int) -> Register:
    """Return the floating-point register ``f<index>``."""
    return Register(RegisterKind.FLOAT, index)


#: The hard-wired zero general register.
R0 = GR(0)

#: The hard-wired true predicate register used as default qualifying predicate.
P0 = PR(0)
