"""Compare instructions: the predicate producers of the compare-branch model.

A compare evaluates a relation between two operands and writes **two**
predicate destinations.  How the two destinations are written depends on the
*compare type* — a faithful subset of the IA-64 compare semantics:

``NONE`` (normal)
    If the qualifying predicate is true: ``pt = result``, ``pf = !result``.
    Otherwise neither target is written.

``UNC`` (unconditional)
    Both targets are written even when the qualifying predicate is false:
    in that case both are cleared.  This is the type produced by
    if-conversion for nested conditions (see Figure 1b of the paper).

``AND``
    If the qualifying predicate is true and the result is false, both targets
    are cleared; otherwise they are left unchanged (parallel "and" reduction).

``OR``
    If the qualifying predicate is true and the result is true, both targets
    are set; otherwise they are left unchanged (parallel "or" reduction).

``OR_ANDCM``
    If the qualifying predicate is true and the result is true, the first
    target is set and the second cleared; otherwise unchanged.

The ``AND``/``OR``/``OR_ANDCM`` types are the ones the paper calls out as
depending on *state not available in the front end* (the previous contents of
the target predicates), which is why the predictor must always produce two
independent predictions rather than deriving one from the other.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Operand
from repro.isa.registers import P0, Register, RegisterKind


class CompareRelation(enum.Enum):
    """Relations a compare can evaluate."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    LTU = "ltu"
    GEU = "geu"

    def evaluate(self, lhs: int, rhs: int) -> bool:
        """Evaluate this relation on two integer values."""
        if self is CompareRelation.EQ:
            return lhs == rhs
        if self is CompareRelation.NE:
            return lhs != rhs
        if self is CompareRelation.LT:
            return lhs < rhs
        if self is CompareRelation.LE:
            return lhs <= rhs
        if self is CompareRelation.GT:
            return lhs > rhs
        if self is CompareRelation.GE:
            return lhs >= rhs
        if self is CompareRelation.LTU:
            return (lhs & _U64_MASK) < (rhs & _U64_MASK)
        if self is CompareRelation.GEU:
            return (lhs & _U64_MASK) >= (rhs & _U64_MASK)
        raise AssertionError(f"unhandled relation {self}")  # pragma: no cover


_U64_MASK = (1 << 64) - 1


class CompareType(enum.Enum):
    """IA-64 style compare types (how the two predicate targets are written)."""

    NONE = "none"
    UNC = "unc"
    AND = "and"
    OR = "or"
    OR_ANDCM = "or.andcm"

    @property
    def writes_both_unconditionally(self) -> bool:
        """True when both targets are written regardless of the result."""
        return self in (CompareType.NONE, CompareType.UNC)

    @property
    def depends_on_previous_values(self) -> bool:
        """True when the targets' new values depend on their previous values."""
        return self in (CompareType.AND, CompareType.OR, CompareType.OR_ANDCM)


class CompareInstruction(Instruction):
    """``(qp) cmp.<rel>.<ctype> pt, pf = src1, src2``."""

    __slots__ = ("relation", "ctype")

    def __init__(
        self,
        relation: CompareRelation,
        pt: Register,
        pf: Register,
        src1: Operand,
        src2: Operand,
        ctype: CompareType = CompareType.NONE,
        qp: Register = P0,
        floating: bool = False,
    ) -> None:
        for target in (pt, pf):
            if target.kind is not RegisterKind.PREDICATE:
                raise ValueError(f"compare target {target} is not a predicate register")
        opcode = Opcode.FCMP if floating else Opcode.CMP
        super().__init__(opcode, dests=[pt, pf], srcs=[src1, src2], qp=qp)
        self.relation = relation
        self.ctype = ctype

    # ------------------------------------------------------------------
    @property
    def pt(self) -> Register:
        """First (true-sense) predicate target."""
        return self.dests[0]

    @property
    def pf(self) -> Register:
        """Second (false-sense) predicate target."""
        return self.dests[1]

    @property
    def useful_targets(self) -> Tuple[Register, ...]:
        """Predicate targets that are architecturally visible (``p0`` dropped).

        Compares frequently use ``p0`` as one of the two targets; such
        compares need only a single prediction (section 3.3 of the paper).
        """
        return tuple(t for t in (self.pt, self.pf) if not t.is_hardwired)

    @property
    def num_predictions_needed(self) -> int:
        """How many predicate predictions this compare requires (1 or 2)."""
        return len(self.useful_targets)

    # ------------------------------------------------------------------
    def compute_targets(
        self,
        qp_value: bool,
        result: bool,
        old_pt: bool,
        old_pf: bool,
    ) -> Tuple[Optional[bool], Optional[bool]]:
        """Return the new values of ``(pt, pf)``.

        ``None`` means the corresponding target is not written.  The previous
        values are required for the parallel compare types.
        """
        ctype = self.ctype
        if ctype is CompareType.UNC:
            if qp_value:
                return result, not result
            return False, False
        if not qp_value:
            return None, None
        if ctype is CompareType.NONE:
            return result, not result
        if ctype is CompareType.AND:
            if not result:
                return False, False
            return None, None
        if ctype is CompareType.OR:
            if result:
                return True, True
            return None, None
        if ctype is CompareType.OR_ANDCM:
            if result:
                return True, False
            return None, None
        raise AssertionError(f"unhandled compare type {ctype}")  # pragma: no cover
