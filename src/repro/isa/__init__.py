"""A compact predicated, compare-branch ISA modelled on IA-64.

The ISA provides exactly the architectural features the paper's mechanisms
depend on:

* 128 general registers (``r0`` hard-wired to zero), 64 one-bit predicate
  registers (``p0`` hard-wired to true) and 8 branch registers.
* Every instruction carries a *qualifying predicate* (``qp``); when the
  predicate evaluates to false the instruction is nullified.
* Compare instructions write **two** predicate destinations whose values
  depend on the comparison result and the compare *type* (``none``, ``unc``,
  ``and``, ``or``, ``or.andcm``) exactly as in the IA-64 compare model.
* Branches are guarded by a predicate produced by a previous compare
  (the *compare-branch* model): a conditional branch is taken iff its
  qualifying predicate is true.

The package exposes the register model (:mod:`repro.isa.registers`), operand
model (:mod:`repro.isa.operands`), the instruction classes
(:mod:`repro.isa.instructions`, :mod:`repro.isa.compare`,
:mod:`repro.isa.branches`), bundle formation (:mod:`repro.isa.bundles`) and a
small disassembler (:mod:`repro.isa.disasm`).
"""

from repro.isa.registers import (
    RegisterKind,
    Register,
    GR,
    PR,
    BR,
    R0,
    P0,
    NUM_GENERAL_REGISTERS,
    NUM_PREDICATE_REGISTERS,
    NUM_BRANCH_REGISTERS,
)
from repro.isa.operands import Immediate, Label, Operand
from repro.isa.opcodes import Opcode, OpClass, OPCODE_INFO, FunctionalUnitClass
from repro.isa.instructions import (
    Instruction,
    ALUInstruction,
    MoveInstruction,
    LoadInstruction,
    StoreInstruction,
    NopInstruction,
    FPInstruction,
)
from repro.isa.compare import CompareType, CompareRelation, CompareInstruction
from repro.isa.branches import BranchKind, BranchInstruction
from repro.isa.bundles import Bundle, BundleStream, bundle_instructions
from repro.isa.disasm import disassemble, format_instruction

__all__ = [
    "RegisterKind",
    "Register",
    "GR",
    "PR",
    "BR",
    "R0",
    "P0",
    "NUM_GENERAL_REGISTERS",
    "NUM_PREDICATE_REGISTERS",
    "NUM_BRANCH_REGISTERS",
    "Immediate",
    "Label",
    "Operand",
    "Opcode",
    "OpClass",
    "OPCODE_INFO",
    "FunctionalUnitClass",
    "Instruction",
    "ALUInstruction",
    "MoveInstruction",
    "LoadInstruction",
    "StoreInstruction",
    "NopInstruction",
    "FPInstruction",
    "CompareType",
    "CompareRelation",
    "CompareInstruction",
    "BranchKind",
    "BranchInstruction",
    "Bundle",
    "BundleStream",
    "bundle_instructions",
    "disassemble",
    "format_instruction",
]
