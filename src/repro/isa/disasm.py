"""A small disassembler used for debugging, examples and error messages.

The output follows IA-64 assembly conventions closely enough to be readable
next to the paper's Figure 1, e.g.::

    (p2) cmp.unc.eq p3, p0 = r10, r11
    (p3) br.ret
         mov r33 = r32
"""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.branches import BranchInstruction
from repro.isa.compare import CompareInstruction
from repro.isa.instructions import (
    Instruction,
    LoadInstruction,
    StoreInstruction,
)
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, Label
from repro.isa.registers import Register


def _qp_prefix(inst: Instruction) -> str:
    return f"({inst.qp}) " if inst.is_predicated else ""


def _operand(op) -> str:
    if isinstance(op, (Register, Immediate, Label)):
        return str(op)
    return repr(op)


def format_instruction(inst: Instruction) -> str:
    """Return a single-line textual rendering of ``inst``."""
    prefix = _qp_prefix(inst)
    if isinstance(inst, CompareInstruction):
        ctype = "" if inst.ctype.value == "none" else f".{inst.ctype.value}"
        mnemonic = "fcmp" if inst.opcode is Opcode.FCMP else "cmp"
        return (
            f"{prefix}{mnemonic}.{inst.relation.value}{ctype} "
            f"{inst.pt}, {inst.pf} = {_operand(inst.srcs[0])}, {_operand(inst.srcs[1])}"
        )
    if isinstance(inst, BranchInstruction):
        target = ""
        if inst.target is not None:
            target = f" {inst.target}"
        elif inst.callee is not None:
            target = f" {inst.callee}"
        return f"{prefix}{inst.opcode}{target}"
    if isinstance(inst, LoadInstruction):
        return (
            f"{prefix}{inst.opcode} {inst.dests[0]} = "
            f"[{inst.base} + {inst.offset}]"
        )
    if isinstance(inst, StoreInstruction):
        return (
            f"{prefix}{inst.opcode} [{inst.base} + {inst.offset}] = {inst.value}"
        )
    if inst.opcode is Opcode.NOP:
        return f"{prefix}nop"
    dests = ", ".join(str(d) for d in inst.dests)
    srcs = ", ".join(_operand(s) for s in inst.srcs)
    if dests and srcs:
        return f"{prefix}{inst.opcode} {dests} = {srcs}"
    if dests:
        return f"{prefix}{inst.opcode} {dests}"
    return f"{prefix}{inst.opcode} {srcs}".rstrip()


def disassemble(instructions: Iterable[Instruction], with_addresses: bool = True) -> str:
    """Return a multi-line disassembly of ``instructions``."""
    lines: List[str] = []
    for inst in instructions:
        text = format_instruction(inst)
        if with_addresses and inst.address is not None:
            lines.append(f"{inst.address:#010x}:  {text}")
        else:
            lines.append(f"    {text}")
    return "\n".join(lines)
