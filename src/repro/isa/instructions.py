"""Static instruction objects.

An :class:`Instruction` is a *static* entity: it belongs to exactly one basic
block, has a program-counter address assigned at layout time, a qualifying
predicate, and lists of source and destination registers.  Dynamic instances
(one per execution) are created by the emulator and the pipeline on top of
these objects.

Design notes
------------

* Instructions expose ``sources`` and ``destinations`` uniformly so the
  compiler's dependence analysis and the pipeline's rename stage never need
  to special-case opcodes; subclasses simply populate the lists.
* The qualifying predicate register is always part of ``sources`` unless it
  is the hard-wired ``p0`` — exactly like real predicated hardware, where a
  ``p0``-guarded instruction has no predicate dependence.
* Instructions are mutable only during program construction (the compiler
  rewrites qualifying predicates during if-conversion); once a program is
  laid out they are treated as read-only.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.isa.opcodes import Opcode, OpClass, OpcodeInfo, opcode_info
from repro.isa.operands import Immediate, Operand, as_operand
from repro.isa.registers import P0, Register, RegisterKind

_uid_counter = itertools.count()


class Instruction:
    """Base class for all static instructions.

    Parameters
    ----------
    opcode:
        The operation performed.
    dests:
        Destination registers written by the instruction.
    srcs:
        Source operands (registers, immediates or labels).
    qp:
        Qualifying predicate register.  Defaults to ``p0`` (always true).
    """

    __slots__ = (
        "uid",
        "opcode",
        "dests",
        "srcs",
        "qp",
        "address",
        "block_label",
        "slot",
        "annotations",
    )

    def __init__(
        self,
        opcode: Opcode,
        dests: Sequence[Register] = (),
        srcs: Sequence[Operand] = (),
        qp: Register = P0,
    ) -> None:
        if qp.kind is not RegisterKind.PREDICATE:
            raise ValueError(f"qualifying predicate must be a predicate register, got {qp}")
        self.uid: int = next(_uid_counter)
        self.opcode = opcode
        self.dests: List[Register] = list(dests)
        self.srcs: List[Operand] = [as_operand(s) for s in srcs]
        self.qp = qp
        #: Program counter, assigned by :meth:`repro.program.program.Program.layout`.
        self.address: Optional[int] = None
        #: Label of the owning basic block (set when appended to a block).
        self.block_label: Optional[str] = None
        #: Slot index within the owning basic block.
        self.slot: Optional[int] = None
        #: Free-form annotations used by compiler passes (e.g. if-conversion).
        self.annotations: dict = {}

    # ------------------------------------------------------------------
    # Static properties
    # ------------------------------------------------------------------
    @property
    def info(self) -> OpcodeInfo:
        """Static metadata for this instruction's opcode."""
        return opcode_info(self.opcode)

    @property
    def opclass(self) -> OpClass:
        return self.info.opclass

    @property
    def latency(self) -> int:
        return self.info.latency

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_compare(self) -> bool:
        return self.opclass is OpClass.COMPARE

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_predicated(self) -> bool:
        """True when the instruction is guarded by a non-trivial predicate."""
        return self.qp != P0

    @property
    def writes_predicates(self) -> bool:
        return any(d.kind is RegisterKind.PREDICATE for d in self.dests)

    # ------------------------------------------------------------------
    # Register views used by dependence analysis and rename
    # ------------------------------------------------------------------
    def source_registers(self, include_qp: bool = True) -> List[Register]:
        """All register sources (optionally including the qualifying predicate)."""
        regs = [s for s in self.srcs if isinstance(s, Register)]
        if include_qp and self.is_predicated:
            regs.append(self.qp)
        return regs

    def destination_registers(self) -> List[Register]:
        """All destination registers, excluding hard-wired ones."""
        return [d for d in self.dests if not d.is_hardwired]

    def predicate_destinations(self) -> List[Register]:
        """Predicate registers written by this instruction (``p0`` excluded)."""
        return [
            d
            for d in self.dests
            if d.kind is RegisterKind.PREDICATE and not d.is_hardwired
        ]

    # ------------------------------------------------------------------
    def clone(self) -> "Instruction":
        """Return a copy of this instruction with a fresh unique id.

        Used by compiler passes that duplicate code (e.g. tail duplication in
        hyperblock formation).  Layout-assigned fields are not copied.
        """
        new = self.__class__.__new__(self.__class__)
        for slot_name in Instruction.__slots__:
            setattr(new, slot_name, getattr(self, slot_name))
        # Reset identity- and layout-related fields.
        new.uid = next(_uid_counter)
        new.dests = list(self.dests)
        new.srcs = list(self.srcs)
        new.annotations = dict(self.annotations)
        new.address = None
        new.block_label = None
        new.slot = None
        # Copy subclass-specific slots, if any.
        for klass in type(self).__mro__:
            for slot_name in getattr(klass, "__slots__", ()):
                if slot_name not in Instruction.__slots__:
                    setattr(new, slot_name, getattr(self, slot_name))
        return new

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        from repro.isa.disasm import format_instruction

        return format_instruction(self)


class ALUInstruction(Instruction):
    """Integer arithmetic / logical operation with a general-register result."""

    __slots__ = ()

    def __init__(
        self,
        opcode: Opcode,
        dest: Register,
        src1: Operand,
        src2: Operand,
        qp: Register = P0,
    ) -> None:
        if opcode_info(opcode).opclass not in (OpClass.ALU, OpClass.MUL):
            raise ValueError(f"{opcode} is not an ALU/MUL opcode")
        super().__init__(opcode, dests=[dest], srcs=[src1, src2], qp=qp)


class FPInstruction(Instruction):
    """Floating-point operation (modelled with integer semantics, FP latency)."""

    __slots__ = ()

    def __init__(
        self,
        opcode: Opcode,
        dest: Register,
        srcs: Sequence[Operand],
        qp: Register = P0,
    ) -> None:
        if opcode_info(opcode).opclass is not OpClass.FP:
            raise ValueError(f"{opcode} is not an FP opcode")
        super().__init__(opcode, dests=[dest], srcs=list(srcs), qp=qp)


class MoveInstruction(Instruction):
    """Register/immediate move."""

    __slots__ = ()

    def __init__(self, dest: Register, src: Operand, qp: Register = P0) -> None:
        opcode = Opcode.MOVI if isinstance(as_operand(src), Immediate) else Opcode.MOV
        super().__init__(opcode, dests=[dest], srcs=[src], qp=qp)


class LoadInstruction(Instruction):
    """Load from memory: ``dest = mem[base + offset]``."""

    __slots__ = ("offset",)

    def __init__(
        self,
        dest: Register,
        base: Register,
        offset: int = 0,
        qp: Register = P0,
        floating: bool = False,
    ) -> None:
        opcode = Opcode.LDF if floating else Opcode.LD
        super().__init__(opcode, dests=[dest], srcs=[base], qp=qp)
        self.offset = offset

    @property
    def base(self) -> Register:
        return self.srcs[0]  # type: ignore[return-value]


class StoreInstruction(Instruction):
    """Store to memory: ``mem[base + offset] = value``."""

    __slots__ = ("offset",)

    def __init__(
        self,
        value: Register,
        base: Register,
        offset: int = 0,
        qp: Register = P0,
        floating: bool = False,
    ) -> None:
        opcode = Opcode.STF if floating else Opcode.ST
        super().__init__(opcode, dests=[], srcs=[value, base], qp=qp)
        self.offset = offset

    @property
    def value(self) -> Register:
        return self.srcs[0]  # type: ignore[return-value]

    @property
    def base(self) -> Register:
        return self.srcs[1]  # type: ignore[return-value]


class NopInstruction(Instruction):
    """No-operation (used as filler by the scheduler and bundle formation)."""

    __slots__ = ()

    def __init__(self, qp: Register = P0) -> None:
        super().__init__(Opcode.NOP, qp=qp)
