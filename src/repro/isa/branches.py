"""Branch instructions of the compare-branch model.

Branches never evaluate conditions themselves: a conditional branch is taken
iff its *qualifying predicate* is true, and that predicate was produced by a
previous compare instruction.  This is the property the paper's predicate
predictor exploits — the correlation information lives with the compare, not
with the branch.

Branch kinds:

``COND``
    ``(qp) br.cond target`` — taken iff ``qp`` is true.

``UNCOND``
    ``br target`` — always taken.  If-conversion may guard it with a
    predicate, which turns it into a *region branch* that must be predicted
    (Figure 1b of the paper).

``CALL`` / ``RET``
    Calls and returns.  ``RET`` may also be guarded after if-conversion
    (``(p3) br.ret`` in Figure 1b).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Label
from repro.isa.registers import P0, Register


class BranchKind(enum.Enum):
    COND = "cond"
    UNCOND = "uncond"
    CALL = "call"
    RET = "ret"


_KIND_TO_OPCODE = {
    BranchKind.COND: Opcode.BR_COND,
    BranchKind.UNCOND: Opcode.BR_UNCOND,
    BranchKind.CALL: Opcode.BR_CALL,
    BranchKind.RET: Opcode.BR_RET,
}


class BranchInstruction(Instruction):
    """A control-transfer instruction."""

    __slots__ = ("kind", "target", "callee")

    def __init__(
        self,
        kind: BranchKind,
        target: Optional[Label] = None,
        qp: Register = P0,
        callee: Optional[str] = None,
    ) -> None:
        if kind in (BranchKind.COND, BranchKind.UNCOND, BranchKind.CALL) and target is None and callee is None:
            raise ValueError(f"{kind} branch requires a target")
        srcs = [target] if target is not None else []
        super().__init__(_KIND_TO_OPCODE[kind], dests=[], srcs=srcs, qp=qp)
        self.kind = kind
        self.target = target
        self.callee = callee

    # ------------------------------------------------------------------
    @property
    def is_conditional(self) -> bool:
        """True when the branch direction must be predicted at fetch.

        This covers explicit ``br.cond`` branches *and* any branch kind that
        has been guarded with a non-trivial predicate by if-conversion
        (region branches such as ``(p3) br.ret``).
        """
        return self.kind is BranchKind.COND or self.is_predicated

    @property
    def guard(self) -> Register:
        """The guarding predicate deciding the branch direction."""
        return self.qp

    @property
    def is_return(self) -> bool:
        return self.kind is BranchKind.RET

    @property
    def is_call(self) -> bool:
        return self.kind is BranchKind.CALL

    # ------------------------------------------------------------------
    def outcome(self, qp_value: bool) -> bool:
        """Return whether the branch is taken given its predicate value."""
        if self.kind is BranchKind.COND:
            return qp_value
        # Unconditional kinds are taken when their guard allows them to
        # execute at all; an if-converted (guarded) return/jump falls through
        # when nullified.
        return qp_value
