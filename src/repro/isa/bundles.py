"""Instruction bundles.

IA-64 groups instructions into 128-bit *bundles* of three instruction slots;
the modelled front end fetches up to two bundles (six instructions) per cycle
(Table 1).  The bundle abstraction here is purely a fetch-grouping concept:
we form bundles greedily over a basic block's instructions, terminating a
bundle early at a taken control transfer so that fetch behaves realistically
across branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

from repro.isa.instructions import Instruction

#: Number of instruction slots in one bundle.
BUNDLE_SLOTS = 3

#: Architectural size of a bundle in bytes (used by address layout).
BUNDLE_BYTES = 16


@dataclass
class Bundle:
    """An ordered group of up to three instructions fetched together."""

    address: int
    instructions: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def full(self) -> bool:
        return len(self.instructions) >= BUNDLE_SLOTS

    @property
    def ends_in_branch(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_branch


def bundle_instructions(
    instructions: Sequence[Instruction],
    base_address: int = 0,
) -> List[Bundle]:
    """Group ``instructions`` into bundles.

    A bundle is closed when it has three instructions or when it absorbs a
    branch (branches always terminate their bundle, matching the common
    compiler convention of placing branches in the last slot).
    """
    bundles: List[Bundle] = []
    current = Bundle(address=base_address)
    for inst in instructions:
        current.instructions.append(inst)
        if current.full or inst.is_branch:
            bundles.append(current)
            current = Bundle(address=base_address + len(bundles) * BUNDLE_BYTES)
    if current.instructions:
        bundles.append(current)
    return bundles


class BundleStream:
    """A flattened, addressable view over a sequence of bundles.

    The fetch stage consumes instructions through this helper: it exposes how
    many instructions can be fetched per cycle given the bundle geometry and
    the maximum of two bundles per fetch.
    """

    def __init__(self, bundles: Iterable[Bundle], bundles_per_fetch: int = 2) -> None:
        self.bundles: List[Bundle] = list(bundles)
        self.bundles_per_fetch = bundles_per_fetch

    @property
    def max_fetch_width(self) -> int:
        """Maximum instructions deliverable in a single fetch cycle."""
        return self.bundles_per_fetch * BUNDLE_SLOTS

    def fetch_groups(self) -> Iterator[List[Instruction]]:
        """Yield the instruction groups delivered by successive fetch cycles."""
        index = 0
        while index < len(self.bundles):
            group: List[Instruction] = []
            consumed = 0
            while consumed < self.bundles_per_fetch and index < len(self.bundles):
                bundle = self.bundles[index]
                group.extend(bundle.instructions)
                index += 1
                consumed += 1
                if bundle.ends_in_branch:
                    break
            yield group
