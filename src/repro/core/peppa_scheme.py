"""PEP-PA branch-handling scheme on the out-of-order core.

The simulator "models in detail a 144 KB sized PEP-PA branch predictor with
14-bit local history ... Since we assume an out-of-order processor, in order
to correctly model this predictor, the simulator maintains the state of a
logical predicate register file" (section 4.1).  That logical file is written
at writeback time — i.e. out of program order — and its content at the time
a branch is fetched selects which of the branch's two local histories is
used.  The paper observes that this out-of-order writing is what makes
PEP-PA, designed for an in-order EPIC machine, lose accuracy on the
out-of-order core.

Predicated instructions are handled conservatively, like the conventional
scheme.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.emulator.executor import DynInst
from repro.isa.registers import NUM_PREDICATE_REGISTERS
from repro.pipeline.scheme_api import BranchHandling, BranchHandlingScheme
from repro.predictors.peppa import PEPPAConfig, PEPPAPredictor
from repro.stats.accuracy import BranchRecord


class _LogicalPredicateFile:
    """The logical predicate register file written at writeback time.

    Every predicate write is recorded with the cycle at which it reaches the
    register file.  The value visible at time ``t`` is the value of the
    write with the **latest completion time not exceeding ``t``** — which on
    an out-of-order core is not necessarily the program-order latest
    definition.  That is precisely the hazard the paper describes.
    """

    #: how many recent writers to remember per register.
    DEPTH = 8

    def __init__(self) -> None:
        self._writes: List[List[Tuple[int, bool]]] = [
            [(0, False)] for _ in range(NUM_PREDICATE_REGISTERS)
        ]
        self._writes[0] = [(0, True)]  # p0 is hard-wired true

    def record_write(self, index: int, cycle: int, value: bool) -> None:
        if index == 0:
            return
        writes = self._writes[index]
        writes.append((cycle, value))
        if len(writes) > self.DEPTH:
            writes.pop(0)

    def value_at(self, index: int, cycle: int) -> bool:
        best_cycle = -1
        best_value = False
        for write_cycle, value in self._writes[index]:
            if write_cycle <= cycle and write_cycle >= best_cycle:
                best_cycle = write_cycle
                best_value = value
        return best_value


class PEPPAScheme(BranchHandlingScheme):
    """Predicate Enhanced Prediction on the out-of-order core."""

    name = "pep-pa"

    def __init__(self, config: PEPPAConfig = PEPPAConfig()) -> None:
        super().__init__()
        self.predictor = PEPPAPredictor(config)
        self.logical_predicates = _LogicalPredicateFile()
        #: Pending (pc, selector, actual) training info per dynamic branch.
        self._pending: Dict[int, Tuple[int, bool, bool]] = {}

    # ------------------------------------------------------------------
    def on_compare_complete(self, dyn: DynInst, complete_cycle: int) -> None:
        for index, value in dyn.pred_writes:
            self.logical_predicates.record_write(index, complete_cycle, value)

    def on_branch_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> BranchHandling:
        selector = self.logical_predicates.value_at(dyn.inst.qp.index, fetch_cycle)
        prediction = self.predictor.predict(dyn.pc, selector)
        actual = bool(dyn.taken)

        record = BranchRecord(
            pc=dyn.pc,
            actual=actual,
            predicted=prediction,
            fetch_prediction=prediction,
            early_resolved=False,
        )
        self.accuracy.record(record)
        self.counters.bump("branches")
        if record.mispredicted:
            self.counters.bump("mispredictions")
        if selector == actual:
            self.counters.bump("selector_matched_outcome")

        self._pending[dyn.seq] = (dyn.pc, selector, actual)
        return BranchHandling(
            final_prediction=prediction,
            fetch_prediction=prediction,
            early_resolved=False,
            override_flush=False,
        )

    def on_branch_resolved(self, dyn: DynInst, resolve_cycle: int, mispredicted: bool) -> None:
        pending = self._pending.pop(dyn.seq, None)
        if pending is None:
            return
        pc, selector, actual = pending
        self.predictor.update(pc, selector, actual)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        size = self.predictor.size_report().total_kib
        return f"PEP-PA local-history predictor ({size:.0f} KiB)"
