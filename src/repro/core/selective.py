"""Selective predicate prediction policy (section 3.2).

Predicting all predicates blindly would undo the benefit of if-conversion —
the compiler removed those branches precisely because they were hard to
predict.  The selective policy therefore speculates only on *confident*
predictions:

* confident **false** prediction → the instruction is cancelled at rename
  and removed from the pipeline (no issue-queue entry, no functional unit,
  no physical destination register);
* confident **true** prediction → the instruction executes as if it were
  not predicated (no predicate dependence, no old-destination dependence);
* not confident → conservative handling (the instruction keeps its predicate
  and old-destination dependences, like the baseline).

When the guard's computed value is already available at rename, the decision
is not speculative at all: a false guard cancels the instruction outright and
a true guard executes it normally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pipeline.pprf import PPRFEntry
from repro.pipeline.uop import RenameDecision


@dataclass
class SelectiveDecision:
    """Outcome of the selective-predication decision for one instruction."""

    decision: RenameDecision
    #: True when the decision relied on a (confident) prediction.
    speculative: bool
    #: The predicted guard value the decision relied on (None when the
    #: decision was not based on a prediction).
    assumed_value: Optional[bool] = None


class SelectivePredicationPolicy:
    """Decides how rename handles each predicated instruction."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    # ------------------------------------------------------------------
    def decide(
        self,
        entry: Optional[PPRFEntry],
        rename_cycle: int,
        architectural_value: bool,
    ) -> SelectiveDecision:
        """Return the rename decision for an instruction guarded by ``entry``.

        ``architectural_value`` is the guard's architecturally-correct value
        (known to the trace-driven simulator); it is only used when the
        guard is already resolved at rename, in which case using it is not
        speculation.
        """
        if not self.enabled:
            return SelectiveDecision(RenameDecision.CONSERVATIVE, speculative=False)

        if entry is None or entry.is_resolved_at(rename_cycle):
            # The computed value is available in the PPRF: act on it
            # non-speculatively.
            if architectural_value:
                return SelectiveDecision(
                    RenameDecision.ASSUME_TRUE,
                    speculative=False,
                    assumed_value=True,
                )
            return SelectiveDecision(
                RenameDecision.CANCEL,
                speculative=False,
                assumed_value=False,
            )

        if not entry.confident or entry.predicted_value is None:
            return SelectiveDecision(RenameDecision.CONSERVATIVE, speculative=False)

        if entry.predicted_value:
            return SelectiveDecision(
                RenameDecision.ASSUME_TRUE,
                speculative=True,
                assumed_value=True,
            )
        return SelectiveDecision(
            RenameDecision.CANCEL,
            speculative=True,
            assumed_value=False,
        )
