"""Accuracy-difference breakdown (Figure 6b).

The paper splits the accuracy difference between the predicate-predictor
scheme and the conventional scheme into two contributions:

* **early-resolved improvement** — "we have counted the number of times that
  the predicate was ready and the conventional branch predictor did a wrong
  prediction";
* **correlation improvement** — "the remaining accuracy difference".

Because both schemes are simulated over the identical correct-path dynamic
instruction stream, the two runs see exactly the same dynamic conditional
branches in the same order, so the per-branch vectors can be intersected
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.accuracy import BranchAccuracy


@dataclass
class AccuracyBreakdown:
    """Per-benchmark breakdown of the accuracy difference."""

    benchmark: str
    conventional_misprediction_rate: float
    predicate_misprediction_rate: float
    #: Fraction of dynamic branches that were early-resolved by the predicate
    #: scheme *and* mispredicted by the conventional scheme.
    early_resolved_improvement: float
    #: Remaining accuracy difference, attributed to correlation (this bucket
    #: also absorbs the scheme's negative effects, exactly as in the paper,
    #: which is why it can be negative for some benchmarks).
    correlation_improvement: float

    @property
    def total_improvement(self) -> float:
        """Total accuracy increase of the predicate scheme (can be negative)."""
        return self.conventional_misprediction_rate - self.predicate_misprediction_rate


def accuracy_breakdown(
    benchmark: str,
    conventional: BranchAccuracy,
    predicate: BranchAccuracy,
) -> AccuracyBreakdown:
    """Compute the Figure 6b breakdown from two same-trace runs."""
    if conventional.branches != predicate.branches:
        raise ValueError(
            f"{benchmark}: runs saw different branch counts "
            f"({conventional.branches} vs {predicate.branches}); the breakdown "
            f"requires both schemes to be simulated over the same trace"
        )
    total = conventional.branches
    if total == 0:
        return AccuracyBreakdown(benchmark, 0.0, 0.0, 0.0, 0.0)

    conv_wrong = conventional.mispredicted_vector()
    early = predicate.early_resolved_vector()
    early_and_conv_wrong = sum(
        1 for is_early, is_wrong in zip(early, conv_wrong) if is_early and is_wrong
    )
    early_improvement = early_and_conv_wrong / total
    total_improvement = (
        conventional.misprediction_rate - predicate.misprediction_rate
    )
    correlation = total_improvement - early_improvement
    return AccuracyBreakdown(
        benchmark=benchmark,
        conventional_misprediction_rate=conventional.misprediction_rate,
        predicate_misprediction_rate=predicate.misprediction_rate,
        early_resolved_improvement=early_improvement,
        correlation_improvement=correlation,
    )
