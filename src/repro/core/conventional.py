"""Conventional two-level override branch prediction scheme.

This is the baseline of both evaluation sections: a fast 4 KB gshare makes a
single-cycle prediction at fetch, and a 148 KB global+local perceptron
(3-cycle access) overrides it before rename.  Branches are predicted with
their own PC; the global history register is fed with branch outcomes.

Predicated instructions are handled conservatively (no predicate prediction):
they keep their guard as a data dependence and depend on the previous value
of their destination registers, exactly the multiple-definition handling the
paper's selective predicate prediction removes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.emulator.executor import DynInst
from repro.pipeline.scheme_api import BranchHandling, BranchHandlingScheme
from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister
from repro.predictors.ideal import NoAliasPerceptron
from repro.predictors.multilevel import TwoLevelOverridePredictor
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor
from repro.predictors.tage import TAGEConfig, TAGEPredictor
from repro.stats.accuracy import BranchRecord


class ConventionalScheme(BranchHandlingScheme):
    """Two-level override branch predictor (Table 1)."""

    name = "conventional"

    #: Every hook ignores its cycle arguments: the prediction stream is a
    #: pure function of the branch rows of the trace.  The lane-batched
    #: kernel exploits this by replaying the scheme once per spec and
    #: sharing the stream across all machine lanes of a batch.  (The
    #: speculative GHR push + same-branch repair in ``on_branch_rename`` is
    #: net-equivalent to pushing the architectural outcome, so even the
    #: history evolution is trace-determined.)
    timing_independent = True

    def __init__(
        self,
        perceptron_config: Optional[PerceptronConfig] = None,
        ideal_no_alias: bool = False,
        perfect_history: bool = False,
        second_level: str = "perceptron",
    ) -> None:
        super().__init__()
        self.perceptron_config = perceptron_config or PerceptronConfig()
        self.second_level = second_level
        if second_level == "tage":
            # The geometric-history backend replaces the perceptron as the
            # slow level; the GHR widens to its longest history length.
            if ideal_no_alias:
                raise ValueError(
                    "ideal_no_alias is a perceptron idealization; it cannot "
                    "be combined with second_level='tage'"
                )
            slow = TAGEPredictor(TAGEConfig())
            history_bits = slow.config.history_bits
        elif second_level == "perceptron":
            slow = (
                NoAliasPerceptron(self.perceptron_config)
                if ideal_no_alias
                else PerceptronPredictor(self.perceptron_config)
            )
            history_bits = self.perceptron_config.global_bits
        else:
            raise ValueError(
                f"unknown second_level {second_level!r}; "
                "expected 'perceptron' or 'tage'"
            )
        self.predictor = TwoLevelOverridePredictor(
            fast=GsharePredictor(history_bits=14),
            slow=slow,  # type: ignore[arg-type]
        )
        self.ghr = GlobalHistoryRegister(history_bits)
        self.ideal_no_alias = ideal_no_alias
        #: With perfect history the GHR is updated with the architectural
        #: outcome at prediction time.  For a conventional predictor on a
        #: correct-path trace this is equivalent to speculative update with
        #: repair by the same branch, so the flag only exists for symmetry
        #: with the predicate scheme's idealization.
        self.perfect_history = perfect_history
        #: Pending training information keyed by dynamic sequence number.
        self._pending: Dict[int, Tuple[int, int, bool]] = {}

    # ------------------------------------------------------------------
    def on_branch_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> BranchHandling:
        history = self.ghr.value
        prediction = self.predictor.predict_both(dyn.pc, history)
        actual = bool(dyn.taken)

        record = BranchRecord(
            pc=dyn.pc,
            actual=actual,
            predicted=prediction.final,
            fetch_prediction=prediction.fast,
            early_resolved=False,
        )
        self.accuracy.record(record)
        self.counters.bump("branches")
        if record.mispredicted:
            self.counters.bump("mispredictions")

        # Speculative history update with the final prediction; the same
        # branch repairs the bit on a misprediction, and no correct-path
        # instruction is fetched before that repair, so younger correct-path
        # branches always observe the corrected bit.
        token = self.ghr.push(prediction.final)
        if prediction.final != actual:
            self.ghr.repair(token, actual)

        self._pending[dyn.seq] = (dyn.pc, history, actual)
        return BranchHandling(
            final_prediction=prediction.final,
            fetch_prediction=prediction.fast,
            early_resolved=False,
            override_flush=prediction.overridden,
        )

    def on_branch_resolved(self, dyn: DynInst, resolve_cycle: int, mispredicted: bool) -> None:
        pending = self._pending.pop(dyn.seq, None)
        if pending is None:
            return
        pc, history, actual = pending
        self.predictor.update(pc, history, actual)

    # ------------------------------------------------------------------
    def lane_bank_profile(self):
        """Geometry token for :class:`repro.predictors.batched.ConventionalLaneBank`.

        Only the plain scheme (table-indexed perceptron + gshare) can be
        stepped as lane-axis arrays; the idealized no-alias variant indexes
        differently, a TAGE second level has no bank implementation, and
        subclasses may override hooks, so all three opt out.
        """
        if (
            type(self) is not ConventionalScheme
            or self.ideal_no_alias
            or self.second_level != "perceptron"
        ):
            return None
        fast = self.predictor.fast
        return (self.perceptron_config, fast.history_bits, fast.counter_bits)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        size = self.predictor.size_report().total_kib
        return f"conventional two-level override predictor ({size:.0f} KiB)"
