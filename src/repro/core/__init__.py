"""The paper's contribution: branch-handling schemes built on predicate
prediction, plus the baseline schemes it is compared against.

Three schemes implement the :class:`repro.pipeline.scheme_api.BranchHandlingScheme`
interface:

* :class:`~repro.core.conventional.ConventionalScheme` — the two-level
  override branch predictor of Table 1 (4 KB gshare + 148 KB perceptron);
* :class:`~repro.core.peppa_scheme.PEPPAScheme` — the 144 KB PEP-PA
  predictor of August et al., driven by the out-of-order logical predicate
  register file;
* :class:`~repro.core.predicate_scheme.PredicatePredictionScheme` — the
  paper's scheme: a 148 KB predicate perceptron indexed by compare PC whose
  predictions are stored in the PPRF, consumed by branches (overriding the
  fetch-time gshare prediction) and by if-converted instructions (selective
  predicate prediction), with early-resolved branches reading the computed
  value directly.

Two competing design points from the surrounding literature complete the
comparison axis:

* :class:`~repro.core.wish_scheme.WishBranchScheme` — Kim/Mutlu/Stark/Patt
  wish branches: per-hammock confidence-gated fallback from predication to
  branching;
* :class:`~repro.core.predicate_aware_scheme.PredicateAwareScheme` —
  Simon/Calder/Ferrante predicate-aware branch prediction: resolved
  predicate bits folded into the branch history.
"""

from repro.core.conventional import ConventionalScheme
from repro.core.peppa_scheme import PEPPAScheme
from repro.core.predicate_aware_scheme import PredicateAwareScheme
from repro.core.predicate_scheme import PredicatePredictionScheme, PredicateSchemeOptions
from repro.core.selective import SelectivePredicationPolicy
from repro.core.wish_scheme import WishBranchScheme
from repro.core.early_resolution import accuracy_breakdown, AccuracyBreakdown

__all__ = [
    "ConventionalScheme",
    "PEPPAScheme",
    "PredicateAwareScheme",
    "PredicatePredictionScheme",
    "PredicateSchemeOptions",
    "SelectivePredicationPolicy",
    "WishBranchScheme",
    "accuracy_breakdown",
    "AccuracyBreakdown",
]
