"""Predicate-aware branch prediction as a branch-handling scheme.

The scheme drives :class:`~repro.predictors.predicate_aware.PredicateAwarePredictor`
(Simon/Calder/Ferrante, HPCA 2003): branches are handled exactly like the
conventional override organisation — a fast fetch-time gshare overridden by
the slow predictor before rename — but the global history both levels index
with is *mixed*: besides speculatively-pushed branch outcomes, every
predicate value computed by a compare is folded in at completion, and the
most recent resolved predicate values additionally feed the second level as
a dedicated snapshot input.  If-converted instructions stay conservatively
predicated (this scheme recovers the *correlation* that if-conversion
removes, not the predication cost).

Every hook ignores its cycle arguments — predictions are a pure function of
the trace rows — so the scheme declares ``timing_independent = True``; it
still runs as a *hook* lane in the batched kernel because the compare-
completion hook observes rows the stream replay never visits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.emulator.executor import DynInst
from repro.pipeline.scheme_api import BranchHandling, BranchHandlingScheme
from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister
from repro.predictors.predicate_aware import (
    PredicateAwareConfig,
    PredicateAwarePredictor,
)
from repro.stats.accuracy import BranchRecord


class PredicateAwareScheme(BranchHandlingScheme):
    """Two-level override prediction over mixed branch/predicate history."""

    name = "predicate-aware"

    #: Hooks ignore every cycle argument (the compare hook folds trace-
    #: determined predicate values).  The overridden compare hook still
    #: routes the scheme as a hook lane — see
    #: :func:`repro.pipeline.batched.stream_eligible`.
    timing_independent = True

    def __init__(self, config: Optional[PredicateAwareConfig] = None) -> None:
        super().__init__()
        self.config = config or PredicateAwareConfig()
        self.fast = GsharePredictor(history_bits=14)
        self.predictor = PredicateAwarePredictor(self.config)
        #: Mixed global history: branch outcomes + resolved predicate bits.
        self.ghr = GlobalHistoryRegister(self.config.global_bits)
        #: Shift register of the most recently resolved predicate values.
        self._snapshot = 0
        self._snapshot_mask = (1 << self.config.predicate_bits) - 1
        #: Training state keyed by the branch's dynamic sequence number.
        self._pending: Dict[int, Tuple[int, int, int, bool]] = {}

    # ------------------------------------------------------------------
    def on_compare_complete(self, dyn: DynInst, complete_cycle: int) -> None:
        for _index, value in dyn.pred_writes:
            bit = bool(value)
            self._snapshot = ((self._snapshot << 1) | (1 if bit else 0)) & self._snapshot_mask
            self.ghr.push_resolved(bit)
            self.counters.bump("predicate_bits_folded")

    # ------------------------------------------------------------------
    def on_branch_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> BranchHandling:
        history = self.ghr.value
        snapshot = self._snapshot
        fast = self.fast.predict(dyn.pc, history)
        final, _output = self.predictor.predict_with_output(dyn.pc, history, snapshot)
        actual = bool(dyn.taken)

        record = BranchRecord(
            pc=dyn.pc,
            actual=actual,
            predicted=final,
            fetch_prediction=fast,
            early_resolved=False,
        )
        self.accuracy.record(record)
        self.counters.bump("branches")
        if record.mispredicted:
            self.counters.bump("mispredictions")

        # Speculative push + same-branch repair (net-equivalent to pushing
        # the outcome), exactly as in the conventional scheme.
        token = self.ghr.push(final)
        if final != actual:
            self.ghr.repair(token, actual)

        self._pending[dyn.seq] = (dyn.pc, history, snapshot, actual)
        return BranchHandling(
            final_prediction=final,
            fetch_prediction=fast,
            early_resolved=False,
            override_flush=fast != final,
        )

    def on_branch_resolved(self, dyn: DynInst, resolve_cycle: int, mispredicted: bool) -> None:
        pending = self._pending.pop(dyn.seq, None)
        if pending is None:
            return
        pc, history, snapshot, actual = pending
        self.fast.update(pc, history, actual)
        self.predictor.update(pc, history, snapshot, actual)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        size = self.predictor.size_report().total_kib
        cfg = self.config
        return (
            f"predicate-aware branch predictor ({size:.0f} KiB, "
            f"{cfg.global_bits}-bit mixed GHR + {cfg.predicate_bits}-bit "
            "predicate snapshot)"
        )
