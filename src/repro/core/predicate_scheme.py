"""The paper's predicate prediction scheme (sections 3.1–3.3).

How a prediction flows through the machine:

1. When a **compare** is fetched, the predicate predictor starts a
   (multi-cycle) prediction for each of its useful predicate targets, using
   the compare PC and the predicate global history; the history is
   speculatively updated with the predicted bits at this point.
2. When the compare **renames**, each target is allocated a fresh physical
   predicate register in the PPRF and the prediction is written into it with
   the speculative bit set; the confidence bit is copied from the confidence
   estimator.
3. When a **conditional branch** renames, it renames its guarding predicate
   and reads the corresponding PPRF entry.  If the compare has already
   executed the entry holds the *computed* value (early-resolved branch,
   always correct); otherwise the branch uses the prediction, which
   overrides the fetch-time first-level prediction.
4. When an **if-converted (predicated) instruction** renames, the selective
   policy consults the same entry: confident-false predictions cancel the
   instruction at rename, confident-true predictions drop the predicate
   dependence, anything else is handled conservatively.  The first
   speculative consumer is recorded in the entry's ROB pointer.
5. When the compare **executes**, the computed values are written into the
   same physical registers (clearing the speculative bit), the predictor and
   the confidence estimator are trained, and — if a consumer speculated on a
   wrong prediction — the pipeline is flushed from the recorded ROB pointer
   and the corrupted global-history bit is repaired.

Negative effects modelled (and removable through the idealization options):
aliasing pressure from the extra predictions of two-target compares, and the
global-history corruption window between a wrong compare prediction and its
consumer-triggered repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.executor import DynInst
from repro.isa.compare import CompareInstruction
from repro.isa.registers import NUM_PREDICATE_REGISTERS
from repro.pipeline.pprf import PPRFEntry, PredicatePhysicalRegisterFile
from repro.pipeline.scheme_api import (
    BranchHandling,
    BranchHandlingScheme,
    PredicatedHandling,
)
from repro.pipeline.uop import RenameDecision
from repro.core.selective import SelectivePredicationPolicy
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister
from repro.predictors.ideal import NoAliasPredicatePerceptron
from repro.predictors.predicate_perceptron import (
    PredicatePerceptronPredictor,
    PredicatePredictorConfig,
)
from repro.predictors.tage import TAGEConfig, TagePredicatePredictor
from repro.stats.accuracy import BranchRecord


@dataclass
class PredicateSchemeOptions:
    """Configuration switches of the predicate prediction scheme."""

    #: Predictor geometry (148 KB by default, Table 1).
    predictor_config: Optional[PredicatePredictorConfig] = None
    #: Enable selective predicate prediction for if-converted instructions.
    selective_predication: bool = True
    #: Keep the fast first-level gshare at fetch (Table 1 keeps it; it only
    #: affects front-end flushes, never final accuracy).
    use_first_level: bool = True
    #: Idealization: give every (compare, slot) a private predictor entry.
    ideal_no_alias: bool = False
    #: Idealization: update the predicate global history with computed
    #: values at prediction time (no corruption window).
    perfect_history: bool = False
    #: Confidence counter width (saturated counter per predictor entry).  A
    #: prediction is used for speculation only when the counter is saturated,
    #: i.e. after 2**confidence_bits - 1 consecutive correct predictions.
    confidence_bits: int = 4
    #: Predicate-predictor structure: the paper's dual-hash perceptron
    #: (``"perceptron"``) or the TAGE-class backend behind the same slot
    #: interface (``"tage"``, see :mod:`repro.predictors.tage`).
    second_level: str = "perceptron"


@dataclass
class _PendingPrediction:
    """Book-keeping attached to each predicted compare target."""

    entry: PPRFEntry
    slot: int
    history_at_prediction: int


class PredicatePredictionScheme(BranchHandlingScheme):
    """Branch prediction and predicated execution through predicate prediction."""

    name = "predicate-predictor"

    def __init__(self, options: Optional[PredicateSchemeOptions] = None) -> None:
        super().__init__()
        self.options = options or PredicateSchemeOptions()
        config = self.options.predictor_config or PredicatePredictorConfig()
        self.predictor_config = config
        if self.options.second_level == "tage":
            if self.options.ideal_no_alias:
                raise ValueError(
                    "ideal_no_alias is a perceptron idealization; it cannot "
                    "be combined with second_level='tage'"
                )
            self.predictor = TagePredicatePredictor(TAGEConfig())
            confidence_entries = self.predictor.confidence_entries
            history_bits = self.predictor.config.history_bits
        elif self.options.second_level == "perceptron":
            if self.options.ideal_no_alias:
                self.predictor = NoAliasPredicatePerceptron(config)
                confidence_entries = 1 << 20
            else:
                self.predictor = PredicatePerceptronPredictor(config)
                confidence_entries = config.entries
            history_bits = config.global_bits
        else:
            raise ValueError(
                f"unknown second_level {self.options.second_level!r}; "
                "expected 'perceptron' or 'tage'"
            )
        self.confidence = ConfidenceEstimator(
            confidence_entries, bits=self.options.confidence_bits
        )
        self.selective = SelectivePredicationPolicy(self.options.selective_predication)
        self.pprf = PredicatePhysicalRegisterFile()
        #: Global history of the predicate predictor, fed by compares only.
        self.ghr = GlobalHistoryRegister(history_bits)
        #: First-level branch predictor (fetch-time, overridden at rename).
        self.first_level = (
            GsharePredictor(history_bits=14) if self.options.use_first_level else None
        )
        self._branch_ghr = GlobalHistoryRegister(14)
        #: Architectural (committed) values of logical predicate registers.
        self._logical_values: List[bool] = [False] * NUM_PREDICATE_REGISTERS
        self._logical_values[0] = True
        #: Predictions awaiting their compare's execution, keyed by the
        #: compare's dynamic sequence number.
        self._pending: Dict[int, List[_PendingPrediction]] = {}

    # ------------------------------------------------------------------
    # Compare handling: produce predictions
    # ------------------------------------------------------------------
    def on_compare_rename(self, dyn: DynInst, fetch_cycle: int, rename_cycle: int) -> None:
        inst = dyn.inst
        if not isinstance(inst, CompareInstruction):
            return
        pending: List[_PendingPrediction] = []
        for slot, target in enumerate((inst.pt, inst.pf)):
            if target.is_hardwired:
                continue
            history = self.ghr.value
            predicted, _output = self.predictor.predict_slot(dyn.pc, slot, history)
            entry = self.pprf.allocate(target.index, dyn.pc, slot, dyn.seq)
            entry.predicted_value = predicted
            entry.predicted_cycle = rename_cycle
            entry.predictor_index = self.predictor.index_for_slot(dyn.pc, slot)
            entry.confident = self.confidence.is_confident(entry.predictor_index)
            entry.speculative = True
            # Speculative history update: one bit per predicted target.  With
            # the perfect-history idealization the architecturally-correct
            # value is pushed instead, eliminating the corruption window.
            if self.options.perfect_history:
                pushed = self._computed_value_for(dyn, target.index)
            else:
                pushed = predicted
            entry.history_token = self.ghr.push(pushed)
            pending.append(_PendingPrediction(entry, slot, history))
            self.counters.bump("predicate_predictions")
        if pending:
            self._pending[dyn.seq] = pending

    def _computed_value_for(self, dyn: DynInst, logical_index: int) -> bool:
        for index, value in dyn.pred_writes:
            if index == logical_index:
                return value
        return self._logical_values[logical_index]

    def on_compare_complete(self, dyn: DynInst, complete_cycle: int) -> None:
        pending = self._pending.pop(dyn.seq, None)
        if pending is None:
            return
        for item in pending:
            entry = item.entry
            computed = self._computed_value_for(dyn, entry.logical_index)
            entry.computed_value = computed
            entry.computed_cycle = complete_cycle
            entry.speculative = False
            correct = entry.predicted_value == computed
            if entry.predictor_index is not None:
                self.confidence.record(entry.predictor_index, correct)
            self.predictor.update_slot(
                entry.producer_pc, item.slot, item.history_at_prediction, computed
            )
            if correct:
                self.counters.bump("predicate_predictions_correct")
            else:
                self.counters.bump("predicate_predictions_wrong")
                # The computed value corrects the speculatively-pushed history
                # bit (if it is still within the register).  Compares fetched
                # between the wrong prediction and this point have already
                # predicted with the corrupted bit — that window is the
                # negative effect quantified in sections 4.2/4.3.
                if not self.options.perfect_history and entry.history_token is not None:
                    if self.ghr.repair(entry.history_token, computed):
                        self.counters.bump("history_repairs_at_writeback")
        # Track committed logical values (trace is the correct path, so every
        # architectural write eventually commits).
        for index, value in dyn.pred_writes:
            self._logical_values[index] = value

    # ------------------------------------------------------------------
    # Branch handling: consume predictions
    # ------------------------------------------------------------------
    def on_branch_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> BranchHandling:
        actual = bool(dyn.taken)
        fetch_prediction: Optional[bool] = None
        if self.first_level is not None:
            fetch_prediction = self.first_level.predict(dyn.pc, self._branch_ghr.value)

        entry = self.pprf.current(dyn.inst.qp.index)
        if entry is None:
            # No in-flight producer: the branch reads the committed
            # architectural value from its renamed predicate register.
            final = bool(dyn.qp_value)
            early_resolved = True
            self.counters.bump("branches_architecturally_resolved")
        elif entry.is_resolved_at(rename_cycle):
            # Early-resolved: the compare executed before the branch renamed,
            # so the physical register already holds the computed value.
            final = bool(dyn.qp_value)
            early_resolved = True
            self.counters.bump("branches_early_resolved")
        else:
            final = bool(entry.predicted_value)
            early_resolved = False
            if entry.rob_pointer is None:
                entry.rob_pointer = dyn.seq
            self.counters.bump("branches_used_prediction")
            if final != actual and entry.history_token is not None:
                # The branch will trigger recovery when the compare computes
                # the true value; the corrupted history bit is repaired as
                # part of that recovery.  Compares fetched in between have
                # already predicted with the corrupted history.
                self.ghr.repair(entry.history_token, bool(dyn.qp_value))
                self.counters.bump("history_repairs")

        record = BranchRecord(
            pc=dyn.pc,
            actual=actual,
            predicted=final,
            fetch_prediction=fetch_prediction,
            early_resolved=early_resolved,
        )
        self.accuracy.record(record)
        self.counters.bump("branches")
        if record.mispredicted:
            self.counters.bump("mispredictions")

        override_flush = fetch_prediction is not None and fetch_prediction != final
        # The first-level predictor trains on branch outcomes as usual.
        self._branch_ghr.push(actual)
        return BranchHandling(
            final_prediction=final,
            fetch_prediction=fetch_prediction,
            early_resolved=early_resolved,
            override_flush=override_flush,
        )

    def on_branch_resolved(self, dyn: DynInst, resolve_cycle: int, mispredicted: bool) -> None:
        if self.first_level is not None:
            self.first_level.update(dyn.pc, self._branch_ghr.value, bool(dyn.taken))

    # ------------------------------------------------------------------
    # If-converted instruction handling: selective predicate prediction
    # ------------------------------------------------------------------
    def on_predicated_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> PredicatedHandling:
        entry = self.pprf.current(dyn.inst.qp.index)
        decision = self.selective.decide(entry, rename_cycle, bool(dyn.qp_value))

        if decision.decision is RenameDecision.CANCEL:
            self.counters.bump("predicated_cancelled")
        elif decision.decision is RenameDecision.ASSUME_TRUE:
            self.counters.bump("predicated_assumed_true")
        else:
            self.counters.bump("predicated_conservative")

        if not decision.speculative:
            return PredicatedHandling(decision.decision)

        assert entry is not None  # speculative decisions require an entry
        if entry.rob_pointer is None:
            entry.rob_pointer = dyn.seq
        if decision.assumed_value == bool(dyn.qp_value):
            return PredicatedHandling(decision.decision)

        # Wrong speculation: the flush is discovered when the producing
        # compare executes (its completion is the guard-ready cycle the
        # pipeline computed), and the corrupted history bit is repaired as
        # part of the recovery.
        self.counters.bump("predicate_flushes")
        if entry.history_token is not None:
            self.ghr.repair(entry.history_token, bool(dyn.qp_value))
        discovery = max(guard_ready_cycle, rename_cycle + 1)
        return PredicatedHandling(decision.decision, flush_discovery_cycle=discovery)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        size = self.predictor.size_report().total_kib
        flags = []
        if self.options.selective_predication:
            flags.append("selective predication")
        if self.options.ideal_no_alias:
            flags.append("no-alias")
        if self.options.perfect_history:
            flags.append("perfect history")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"predicate perceptron predictor ({size:.0f} KiB){suffix}"
