"""Wish branches: confidence-gated fallback from predication to branching.

Kim, Mutlu, Stark & Patt (MICRO 2005) observe that if-conversion is a bet
made at compile time: predicating a hammock wins when its branch would have
mispredicted, and loses (wasted fetch/execute bandwidth, serialized guard
dependences) when the branch was easy.  A *wish branch* keeps both encodings
alive and lets the hardware pick per dynamic instance: when the guard
predictor is **confident**, the hammock executes in *branch mode* — the
predicted guard steers rename exactly like a predicted branch (false guards
cancel, true guards drop the predicate dependence) and a wrong guess costs a
pipeline flush when the compare computes the true value; when the predictor
is **not confident**, the hammock falls back to *predicate mode* and executes
conservatively predicated, exactly like the baseline.

The scheme composes existing machinery rather than inventing new structures:

* branches use the conventional two-level override organisation (fast gshare
  + a perceptron or TAGE second level, selected by ``second_level``);
* guards are predicted per compare target by the dual-hash predicate
  perceptron (:mod:`repro.predictors.predicate_perceptron`), trained with
  computed values at compare completion;
* the gate is the paper's own saturating-counter
  :class:`~repro.predictors.confidence.ConfidenceEstimator`, one counter per
  guard-predictor entry.

The scheme is *timing-dependent* (``timing_independent = False``): the
branch-vs-predicate decision compares the guard-ready cycle against the
rename cycle, so the lane-batched kernel runs wish lanes as hook lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.emulator.executor import DynInst
from repro.isa.compare import CompareInstruction
from repro.isa.registers import NUM_PREDICATE_REGISTERS
from repro.pipeline.scheme_api import (
    BranchHandling,
    BranchHandlingScheme,
    PredicatedHandling,
)
from repro.pipeline.uop import RenameDecision
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister
from repro.predictors.multilevel import TwoLevelOverridePredictor
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor
from repro.predictors.predicate_perceptron import (
    PredicatePerceptronPredictor,
    PredicatePredictorConfig,
)
from repro.predictors.tage import TAGEConfig, TAGEPredictor
from repro.stats.accuracy import BranchRecord


@dataclass
class _GuardState:
    """The in-flight guard prediction of one logical predicate register."""

    producer_seq: int
    predicted: bool
    confident: bool


@dataclass
class _PendingGuard:
    """Training book-keeping for one predicted compare target."""

    logical_index: int
    slot: int
    history_at_prediction: int
    predicted: bool
    confidence_index: int


class WishBranchScheme(BranchHandlingScheme):
    """Per-hammock branch-mode/predicate-mode selection by guard confidence."""

    name = "wish"

    #: The branch-vs-predicate gate reads the guard-ready and rename cycles,
    #: so hook results depend on pipeline timing (hook lane in the batched
    #: kernel).
    timing_independent = False

    def __init__(
        self,
        second_level: str = "perceptron",
        confidence_bits: int = 4,
        perceptron_config: Optional[PerceptronConfig] = None,
        guard_config: Optional[PredicatePredictorConfig] = None,
    ) -> None:
        super().__init__()
        self.second_level = second_level
        self.perceptron_config = perceptron_config or PerceptronConfig()
        if second_level == "tage":
            slow = TAGEPredictor(TAGEConfig())
            branch_history_bits = slow.config.history_bits
        elif second_level == "perceptron":
            slow = PerceptronPredictor(self.perceptron_config)
            branch_history_bits = self.perceptron_config.global_bits
        else:
            raise ValueError(
                f"unknown second_level {second_level!r}; "
                "expected 'perceptron' or 'tage'"
            )
        self.predictor = TwoLevelOverridePredictor(
            fast=GsharePredictor(history_bits=14),
            slow=slow,  # type: ignore[arg-type]
        )
        self.ghr = GlobalHistoryRegister(branch_history_bits)

        self.guard_config = guard_config or PredicatePredictorConfig()
        self.guard_predictor = PredicatePerceptronPredictor(self.guard_config)
        self.confidence = ConfidenceEstimator(
            self.guard_config.entries, bits=confidence_bits
        )
        #: Guard-predictor history, fed with computed values at completion
        #: (no speculative push: wish guards repair nothing, they flush).
        self.guard_ghr = GlobalHistoryRegister(self.guard_config.global_bits)

        #: Committed values of the logical predicate registers.
        self._logical_values: List[bool] = [False] * NUM_PREDICATE_REGISTERS
        self._logical_values[0] = True
        #: Latest in-flight guard prediction per logical predicate register.
        self._inflight: Dict[int, _GuardState] = {}
        #: Guard training state keyed by the compare's sequence number.
        self._pending_guards: Dict[int, List[_PendingGuard]] = {}
        #: Branch training state keyed by the branch's sequence number.
        self._pending_branches: Dict[int, Tuple[int, int, bool]] = {}

    # ------------------------------------------------------------------
    # Compare handling: predict guards, gate on confidence
    # ------------------------------------------------------------------
    def on_compare_rename(self, dyn: DynInst, fetch_cycle: int, rename_cycle: int) -> None:
        inst = dyn.inst
        if not isinstance(inst, CompareInstruction):
            return
        pending: List[_PendingGuard] = []
        for slot, target in enumerate((inst.pt, inst.pf)):
            if target.is_hardwired:
                continue
            history = self.guard_ghr.value
            predicted, _output = self.guard_predictor.predict_slot(dyn.pc, slot, history)
            confidence_index = self.guard_predictor.index_for_slot(dyn.pc, slot)
            self._inflight[target.index] = _GuardState(
                producer_seq=dyn.seq,
                predicted=predicted,
                confident=self.confidence.is_confident(confidence_index),
            )
            pending.append(
                _PendingGuard(
                    logical_index=target.index,
                    slot=slot,
                    history_at_prediction=history,
                    predicted=predicted,
                    confidence_index=confidence_index,
                )
            )
            self.counters.bump("wish_guard_predictions")
        if pending:
            self._pending_guards[dyn.seq] = pending

    def _computed_value_for(self, dyn: DynInst, logical_index: int) -> bool:
        for index, value in dyn.pred_writes:
            if index == logical_index:
                return value
        return self._logical_values[logical_index]

    def on_compare_complete(self, dyn: DynInst, complete_cycle: int) -> None:
        pending = self._pending_guards.pop(dyn.seq, None)
        if pending is not None:
            for item in pending:
                computed = self._computed_value_for(dyn, item.logical_index)
                correct = item.predicted == computed
                self.confidence.record(item.confidence_index, correct)
                self.guard_predictor.update_slot(
                    dyn.pc, item.slot, item.history_at_prediction, computed
                )
                self.guard_ghr.push_resolved(computed)
                if correct:
                    self.counters.bump("wish_guard_predictions_correct")
                else:
                    self.counters.bump("wish_guard_predictions_wrong")
        for index, value in dyn.pred_writes:
            self._logical_values[index] = value

    # ------------------------------------------------------------------
    # Predicated instructions: the wish gate
    # ------------------------------------------------------------------
    def on_predicated_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> PredicatedHandling:
        guard = self._inflight.get(dyn.inst.qp.index)
        actual = bool(dyn.qp_value)

        if guard is None or guard_ready_cycle <= rename_cycle:
            # The guard value is available at rename: act on it outright
            # (no speculation, no flush risk) — in wish-branch terms the
            # hammock resolved before the mode choice mattered.
            self.counters.bump("wish_resolved_at_rename")
            decision = RenameDecision.ASSUME_TRUE if actual else RenameDecision.CANCEL
            return PredicatedHandling(decision)

        if guard.confident:
            # Branch mode: speculate on the predicted guard like a branch.
            self.counters.bump("wish_branch_mode")
            decision = (
                RenameDecision.ASSUME_TRUE if guard.predicted else RenameDecision.CANCEL
            )
            if guard.predicted == actual:
                return PredicatedHandling(decision)
            # Wrong guess: the flush is discovered when the producing
            # compare computes the true guard value.
            self.counters.bump("wish_flushes")
            discovery = max(guard_ready_cycle, rename_cycle + 1)
            return PredicatedHandling(decision, flush_discovery_cycle=discovery)

        # Predicate mode: not confident enough to branch — execute
        # conservatively predicated, like the baseline.
        self.counters.bump("wish_predicate_mode")
        return PredicatedHandling(RenameDecision.CONSERVATIVE)

    # ------------------------------------------------------------------
    # Branch handling: conventional two-level override prediction
    # ------------------------------------------------------------------
    def on_branch_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> BranchHandling:
        history = self.ghr.value
        prediction = self.predictor.predict_both(dyn.pc, history)
        actual = bool(dyn.taken)

        record = BranchRecord(
            pc=dyn.pc,
            actual=actual,
            predicted=prediction.final,
            fetch_prediction=prediction.fast,
            early_resolved=False,
        )
        self.accuracy.record(record)
        self.counters.bump("branches")
        if record.mispredicted:
            self.counters.bump("mispredictions")

        # Speculative push + same-branch repair, as in the conventional
        # scheme: no younger correct-path branch observes a stale bit.
        token = self.ghr.push(prediction.final)
        if prediction.final != actual:
            self.ghr.repair(token, actual)

        self._pending_branches[dyn.seq] = (dyn.pc, history, actual)
        return BranchHandling(
            final_prediction=prediction.final,
            fetch_prediction=prediction.fast,
            early_resolved=False,
            override_flush=prediction.overridden,
        )

    def on_branch_resolved(self, dyn: DynInst, resolve_cycle: int, mispredicted: bool) -> None:
        pending = self._pending_branches.pop(dyn.seq, None)
        if pending is None:
            return
        pc, history, actual = pending
        self.predictor.update(pc, history, actual)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        branch_kib = self.predictor.size_report().total_kib
        guard_kib = self.guard_predictor.size_report().total_kib
        return (
            f"wish branches (guard-confidence gate, {self.second_level} second "
            f"level, {branch_kib:.0f}+{guard_kib:.0f} KiB)"
        )
