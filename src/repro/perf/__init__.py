"""Performance subsystem: optimization flags, the ``repro bench`` harness
and the CI regression gate.

Only the flag helpers are exported at package level: the bench harness
(`repro.perf.bench`) imports the execution engine, which transitively
imports the predictors, and the predictors consult
:func:`optimizations_enabled` — importing the harness here would create an
import cycle.
"""

from repro.perf.flags import (
    OPT_ENV_VAR,
    optimizations_enabled,
    resolve_optimized,
)

__all__ = [
    "OPT_ENV_VAR",
    "optimizations_enabled",
    "resolve_optimized",
]
