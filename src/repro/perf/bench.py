"""The ``repro bench`` harness: standardized simulator-throughput cells.

A bench *cell* is one (benchmark, binary flavour, scheme) simulation at a
fixed fetched-instruction budget.  For every cell the harness measures the
wall-clock cost of trace collection and of the timing simulation itself and
reports **simulated instructions per second** and **simulated cycles per
second** — the two throughput numbers the CI gate tracks — plus the trace
layer's costs: trace-build throughput (instructions emulated per second
into the trace representation), the peak memory allocated while building
the trace (measured with :mod:`tracemalloc` in a dedicated pass), and the
trace's serialized on-disk size (which the gate also tracks, see
:mod:`repro.perf.compare`).

Cross-machine comparability: raw wall-clock throughput depends on the host,
so every report embeds a *calibration* measurement — the throughput of a
fixed pure-Python integer loop on the same machine, in million operations
per second.  The regression gate compares ``instructions_per_second /
calibration_ops_per_second`` (a dimensionless, machine-normalized score)
whenever both reports carry a calibration, falling back to raw throughput
otherwise.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
import tracemalloc
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.emulator.executor import Emulator
from repro.emulator.trace import serialize_trace
from repro.emulator.tracepack import pack_supported
from repro.engine import BASELINE, IF_CONVERTED, ExecutionEngine, SchemeSpec
from repro.experiments.setup import ExperimentProfile
from repro.perf import flags
from repro.pipeline.machine import MachineSpec

#: Schema identifier embedded in every report.  v2 added the per-cell trace
#: metrics (build throughput, peak allocation, serialized size); v3 added
#: lane-batched sweep cells (``lanes``/``scalar_seconds``/``batch_speedup``
#: per batch cell, ``lane_batching`` under ``machine``, batch keys in
#: history rows); v4 added the streaming-ingest cell (``ingest_lines`` per
#: ingest cell — its throughput reports through the trace columns, its sim
#: columns are zero).  v1–v3 reports remain comparable through the
#: throughput gate, which reads only aggregate fields present in every
#: version.
SCHEMA = "repro-bench/v4"

#: Fetched-instruction budget per cell.
QUICK_INSTRUCTIONS = 12_000
FULL_INSTRUCTIONS = 40_000

#: Iterations of the calibration loop (one measurement).
_CALIBRATION_OPS = 200_000


@dataclass(frozen=True)
class BenchCell:
    """One standardized throughput measurement.

    ``machine`` selects the simulated machine configuration (default: the
    Table 1 machine).  A non-default machine marks a *sweep cell*: it keeps
    the throughput of non-default configurations — the job mix
    ``repro sweep`` runs — measured and gated alongside the Table 1 cells.
    """

    benchmark: str
    flavour: str
    scheme: str
    machine: MachineSpec = MachineSpec()

    def scheme_label(self) -> str:
        """Scheme plus machine overrides, e.g. ``predicate@rob_entries=64``."""
        if self.machine.is_default():
            return self.scheme
        return f"{self.scheme}@{self.machine.describe()}"

    def label(self) -> str:
        """The cell's full ``benchmark/flavour/scheme`` label (filter target)."""
        return f"{self.benchmark}/{self.flavour}/{self.scheme_label()}"


@dataclass(frozen=True)
class BatchBenchCell:
    """One lane-batched throughput measurement: N (scheme, machine) lanes
    stepped in lockstep over one shared trace.

    Batch cells measure the sweep-shaped workload ``repro sweep`` actually
    runs — many same-cell simulations over one trace — through the engine's
    lane-batching path (:meth:`~repro.engine.executor.ExecutionEngine.run_cell_jobs`).
    Each cell also times the per-lane scalar reference, so its report row
    carries the batch speedup alongside the gated throughput numbers.
    """

    benchmark: str
    flavour: str
    name: str
    lanes: Tuple[Tuple[str, MachineSpec], ...]

    def scheme_label(self) -> str:
        """The batch shape, e.g. ``batch:rob-sweep-x8``."""
        return f"batch:{self.name}-x{len(self.lanes)}"

    def label(self) -> str:
        """The cell's full ``benchmark/flavour/scheme`` label (filter target)."""
        return f"{self.benchmark}/{self.flavour}/{self.scheme_label()}"


@dataclass(frozen=True)
class IngestBenchCell:
    """One streaming-ingest throughput measurement.

    Times :func:`repro.workloads.trace_ingest.ingest_trace_file` over a
    synthetic ``.trace`` branch-outcome file generated once per run
    (deterministic content, never timed).  The cell reports through the
    trace columns — lines parsed as ``trace_instructions``, lines/second
    as the throughput, the input file size as ``trace_disk_bytes``, and
    the :mod:`tracemalloc` peak of a dedicated pass as
    ``trace_peak_alloc_bytes``, which is how the history log tracks that
    line-iterating ingestion stays flat (see docs/internals/traces.md).
    Its simulation columns are zero, so it adds nothing to the gated
    simulator-throughput aggregate.
    """

    name: str
    lines: int
    sites: int = 48

    def scheme_label(self) -> str:
        """The ingest shape, e.g. ``ingest:synthetic-x60000``."""
        return f"ingest:{self.name}-x{self.lines}"

    def label(self) -> str:
        """The cell's full ``benchmark/flavour/scheme`` label (filter target)."""
        return f"{self.name}/trace-file/{self.scheme_label()}"


#: The sweep-shaped batch cells of the quick suite: a pure-conventional ROB
#: sweep (the lane-bank fast path — one shared decision stream drives all
#: lanes) and a mixed-scheme cell mirroring the ``rob-scaling`` sweep
#: scenario's shape (conventional + predicate × ROB sizes), which exercises
#: stream lanes and hook lanes in one batch.
_ROB_SWEEP_POINTS = (32, 48, 64, 96, 128, 160, 192, 256)
QUICK_BATCH_CELLS: Sequence[BatchBenchCell] = (
    BatchBenchCell(
        "gzip",
        IF_CONVERTED,
        "rob-sweep",
        tuple(
            ("conventional", MachineSpec.make(rob_entries=size))
            for size in _ROB_SWEEP_POINTS
        ),
    ),
    BatchBenchCell(
        "gzip",
        IF_CONVERTED,
        "rob-scaling-mixed",
        tuple(
            (scheme, MachineSpec.make(rob_entries=size))
            for scheme in ("conventional", "predicate")
            for size in (32, 64, 128, 256)
        ),
    ),
)

#: The quick suite: one cell per scheme plus flavour coverage, on the
#: benchmarks the test-suite profile also uses (they compile fastest), plus
#: one sweep cell on a non-default machine and one custom-workload cell —
#: ``branchy`` is a *library spec file* (``workloads/library/branchy.json``),
#: so the throughput of the registry's spec-defined path is measured and
#: gated alongside the built-in programs.  The batch cells put the
#: lane-batched kernel under the same regression gate (their lanes count
#: into the aggregate the gate scores).
QUICK_CELLS: Sequence[Any] = (
    BenchCell("gzip", IF_CONVERTED, "conventional"),
    BenchCell("gzip", IF_CONVERTED, "predicate"),
    BenchCell("twolf", IF_CONVERTED, "pep-pa"),
    BenchCell("twolf", BASELINE, "conventional"),
    BenchCell("swim", IF_CONVERTED, "predicate"),
    BenchCell("gzip", IF_CONVERTED, "predicate", MachineSpec.make(rob_entries=64)),
    BenchCell("branchy", IF_CONVERTED, "predicate"),
    # Streaming-ingest throughput: the line-iterating `.trace` parser at a
    # size where whole-file buffering would already show in the peak.
    IngestBenchCell("synthetic", 60_000),
) + tuple(QUICK_BATCH_CELLS)

#: The full suite: broader benchmark coverage for every scheme.
FULL_CELLS: Sequence[Any] = QUICK_CELLS + (
    BenchCell("mcf", IF_CONVERTED, "predicate"),
    BenchCell("crafty", IF_CONVERTED, "conventional"),
    BenchCell("vpr", IF_CONVERTED, "pep-pa"),
    BenchCell("swim", BASELINE, "predicate"),
    BenchCell("art", IF_CONVERTED, "conventional"),
)


def calibration_mops(rounds: int = 5) -> float:
    """Throughput of a fixed pure-Python integer loop, in Mops/s.

    Best-of-``rounds`` to shrug off scheduler noise.  The loop shape is part
    of the bench schema: changing it invalidates normalized comparisons
    against older reports.
    """
    best = 0.0
    for _ in range(rounds):
        accumulator = 0
        started = perf_counter()
        for i in range(_CALIBRATION_OPS):
            accumulator = (accumulator + i) ^ (accumulator >> 3)
        elapsed = perf_counter() - started
        if elapsed > 0:
            best = max(best, _CALIBRATION_OPS / elapsed / 1e6)
    return best


def git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else "unknown"


def _machine_metadata() -> Dict[str, Any]:
    from repro.predictors.batched import lane_bank_supported

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        # The lane-batching configuration in effect: whether the columnar
        # trace path and the numpy lane bank are available on this host,
        # and the shape of the suite's batch cells.  Reports from hosts
        # where batching degraded to the scalar path stay diagnosable.
        "lane_batching": {
            "pack_supported": pack_supported(),
            "lane_bank_supported": lane_bank_supported(),
            "quick_batch_cells": [
                {"label": cell.label(), "lanes": len(cell.lanes)}
                for cell in QUICK_BATCH_CELLS
            ],
        },
    }


def _trace_peak_alloc_bytes(engine: ExecutionEngine, cell: BenchCell, instructions: int) -> int:
    """Peak bytes allocated while collecting one cell's trace.

    Measured in a dedicated :mod:`tracemalloc` pass over a fresh emulator
    (tracing slows collection, so the timed measurement never runs under
    it).  Uses whatever trace representation the active ``REPRO_OPT`` mode
    would use, so ``--compare-opt`` shows the object-vs-columnar footprint.
    """
    if tracemalloc.is_tracing():  # pragma: no cover - foreign tracing active
        return 0
    program = engine.build_binary(cell.benchmark, cell.flavour)
    emulator = Emulator(program)
    tracemalloc.start()
    try:
        if emulator.optimized and pack_supported():
            emulator.run_pack(instructions)
        else:
            list(emulator.run(instructions))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _measure_cell(cell: BenchCell, instructions: int, repeats: int) -> Dict[str, Any]:
    """Measure one cell with a fresh, cache-less engine; best-of-``repeats``."""
    profile = ExperimentProfile(
        name="bench",
        instructions_per_benchmark=instructions,
        benchmarks=[cell.benchmark],
        profile_budget=min(instructions, 20_000),
    )
    engine = ExecutionEngine(profile, store=None, oracle_stats=False)
    trace = engine.collect_trace(cell.benchmark, cell.flavour)  # timed via stats
    trace_seconds = engine.stats.trace_seconds
    trace_instructions = len(trace)
    trace_disk_bytes = len(serialize_trace(trace))
    trace_peak_alloc = _trace_peak_alloc_bytes(engine, cell, instructions)
    spec = SchemeSpec.make(cell.scheme)
    result = None
    for _ in range(max(1, repeats)):
        result = engine.simulate(cell.benchmark, cell.flavour, spec, machine=cell.machine)
    sim_seconds = min(t.seconds for t in engine.job_timings if not t.cached)
    committed = result.metrics.committed_instructions
    cycles = result.metrics.cycles
    return {
        "benchmark": cell.benchmark,
        "flavour": cell.flavour,
        "scheme": cell.scheme_label(),
        "machine": cell.machine.describe(),
        "instructions": committed,
        "cycles": cycles,
        "ipc": result.metrics.ipc,
        "misprediction_rate": result.accuracy.misprediction_rate,
        "trace_seconds": trace_seconds,
        "trace_instructions": trace_instructions,
        "trace_instructions_per_second": (
            trace_instructions / trace_seconds if trace_seconds else 0.0
        ),
        "trace_disk_bytes": trace_disk_bytes,
        "trace_peak_alloc_bytes": trace_peak_alloc,
        "sim_seconds": sim_seconds,
        "sim_instructions_per_second": committed / sim_seconds if sim_seconds else 0.0,
        "sim_cycles_per_second": cycles / sim_seconds if sim_seconds else 0.0,
    }


def _measure_batch_cell(cell: BatchBenchCell, instructions: int, repeats: int) -> Dict[str, Any]:
    """Measure one lane-batched cell: batched wall clock vs. the per-lane
    scalar reference, both best-of-``repeats`` over one shared trace."""
    from repro.engine.planner import make_build_job, make_simulate_job, make_trace_job
    from repro.pipeline.core import OutOfOrderCore

    profile = ExperimentProfile(
        name="bench",
        instructions_per_benchmark=instructions,
        benchmarks=[cell.benchmark],
        profile_budget=min(instructions, 20_000),
    )
    engine = ExecutionEngine(profile, store=None, oracle_stats=False)
    trace = engine.collect_trace(cell.benchmark, cell.flavour)
    trace_seconds = engine.stats.trace_seconds
    trace_instructions = len(trace)
    trace_disk_bytes = len(serialize_trace(trace))
    trace_peak_alloc = _trace_peak_alloc_bytes(engine, cell, instructions)
    build = make_build_job(cell.benchmark, cell.flavour, engine.factory)
    trace_job = make_trace_job(build, instructions)
    jobs = [
        make_simulate_job(trace_job, SchemeSpec.make(kind), machine)
        for kind, machine in cell.lanes
    ]
    # Scalar reference first (it also warms every shared code path), then
    # the batched launch through the engine's cell-execution entry point.
    scalar_seconds = float("inf")
    for _ in range(max(1, repeats)):
        started = perf_counter()
        for job in jobs:
            core = OutOfOrderCore(config=job.machine.build_config())
            core.run(trace, job.scheme.build(), program_name=cell.benchmark)
        scalar_seconds = min(scalar_seconds, perf_counter() - started)
    batched_seconds = float("inf")
    results = {}
    for _ in range(max(1, repeats)):
        started = perf_counter()
        results = engine.run_cell_jobs(jobs)
        batched_seconds = min(batched_seconds, perf_counter() - started)
    lane_results = [results[job.key] for job in jobs]
    committed = sum(r.metrics.committed_instructions for r in lane_results)
    cycles = sum(r.metrics.cycles for r in lane_results)
    mispredictions = [r.accuracy.misprediction_rate for r in lane_results]
    return {
        "benchmark": cell.benchmark,
        "flavour": cell.flavour,
        "scheme": cell.scheme_label(),
        "machine": f"lanes={len(cell.lanes)}",
        "lanes": len(cell.lanes),
        "instructions": committed,
        "cycles": cycles,
        "ipc": committed / cycles if cycles else 0.0,
        "misprediction_rate": sum(mispredictions) / len(mispredictions),
        "trace_seconds": trace_seconds,
        "trace_instructions": trace_instructions,
        "trace_instructions_per_second": (
            trace_instructions / trace_seconds if trace_seconds else 0.0
        ),
        "trace_disk_bytes": trace_disk_bytes,
        "trace_peak_alloc_bytes": trace_peak_alloc,
        "sim_seconds": batched_seconds,
        "scalar_seconds": scalar_seconds,
        "batch_speedup": scalar_seconds / batched_seconds if batched_seconds else 0.0,
        "sim_instructions_per_second": committed / batched_seconds if batched_seconds else 0.0,
        "sim_cycles_per_second": cycles / batched_seconds if batched_seconds else 0.0,
    }


def _write_synthetic_trace(path: str, lines: int, sites: int) -> None:
    """A deterministic biased branch-outcome file (generation is not timed)."""
    import random

    rng = random.Random(lines * 31 + sites)
    pcs = [f"0x{0x400000 + 16 * i:x}" for i in range(sites)]
    biases = [rng.random() for _ in range(sites)]
    with open(path, "w", encoding="utf-8") as handle:
        for _ in range(lines):
            site = rng.randrange(sites)
            taken = rng.random() < biases[site]
            handle.write(f"{pcs[site]} {'T' if taken else 'N'}\n")


def _measure_ingest_cell(cell: IngestBenchCell, repeats: int) -> Dict[str, Any]:
    """Measure one streaming-ingest cell; best-of-``repeats`` wall clock."""
    import tempfile

    from repro.workloads.trace_ingest import ingest_trace_file

    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as scratch:
        path = os.path.join(scratch, f"{cell.name}.trace")
        _write_synthetic_trace(path, cell.lines, cell.sites)
        disk_bytes = os.path.getsize(path)
        ingest_seconds = float("inf")
        for _ in range(max(1, repeats)):
            started = perf_counter()
            ingest_trace_file(path, name=cell.name)
            ingest_seconds = min(ingest_seconds, perf_counter() - started)
        peak = 0
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            try:
                ingest_trace_file(path, name=cell.name)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
    return {
        "benchmark": cell.name,
        "flavour": "trace-file",
        "scheme": cell.scheme_label(),
        "machine": f"sites={cell.sites}",
        "ingest_lines": cell.lines,
        "instructions": 0,
        "cycles": 0,
        "ipc": 0.0,
        "misprediction_rate": 0.0,
        "trace_seconds": ingest_seconds,
        "trace_instructions": cell.lines,
        "trace_instructions_per_second": (
            cell.lines / ingest_seconds if ingest_seconds else 0.0
        ),
        "trace_disk_bytes": disk_bytes,
        "trace_peak_alloc_bytes": int(peak),
        "sim_seconds": 0.0,
        "sim_instructions_per_second": 0.0,
        "sim_cycles_per_second": 0.0,
    }


def filter_cells(cells: Sequence[Any], cell_filter: Optional[str]) -> Sequence[Any]:
    """Cells whose ``benchmark/flavour/scheme`` label contains the filter."""
    if not cell_filter:
        return cells
    selected = tuple(cell for cell in cells if cell_filter in cell.label())
    if not selected:
        labels = ", ".join(cell.label() for cell in cells)
        raise ValueError(f"no bench cells match filter {cell_filter!r} (suite: {labels})")
    return selected


def run_bench(
    quick: bool = False,
    instructions: Optional[int] = None,
    repeats: int = 1,
    optimized: Optional[bool] = None,
    cells: Optional[Sequence[BenchCell]] = None,
    cell_filter: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the bench suite and return the machine-readable report.

    ``cell_filter`` restricts the suite to cells whose
    ``benchmark/flavour/scheme`` label contains the given substring
    (:class:`ValueError` when nothing matches).
    """
    if cells is None:
        cells = QUICK_CELLS if quick else FULL_CELLS
    cells = filter_cells(cells, cell_filter)
    if instructions is None:
        instructions = QUICK_INSTRUCTIONS if quick else FULL_INSTRUCTIONS
    resolved = flags.resolve_optimized(optimized)
    measured: List[Dict[str, Any]] = []
    with flags.forced(resolved):
        for cell in cells:
            if isinstance(cell, BatchBenchCell):
                measured.append(_measure_batch_cell(cell, instructions, repeats))
            elif isinstance(cell, IngestBenchCell):
                measured.append(_measure_ingest_cell(cell, repeats))
            else:
                measured.append(_measure_cell(cell, instructions, repeats))
    total_instructions = sum(c["instructions"] for c in measured)
    total_cycles = sum(c["cycles"] for c in measured)
    total_sim_seconds = sum(c["sim_seconds"] for c in measured)
    total_trace_seconds = sum(c["trace_seconds"] for c in measured)
    total_trace_instructions = sum(c["trace_instructions"] for c in measured)
    total_trace_disk_bytes = sum(c["trace_disk_bytes"] for c in measured)
    peak_trace_alloc = max((c["trace_peak_alloc_bytes"] for c in measured), default=0)
    mops = calibration_mops()
    instructions_per_second = total_instructions / total_sim_seconds if total_sim_seconds else 0.0
    return {
        "schema": SCHEMA,
        "revision": git_revision(),
        "created_unix": time.time(),
        "suite": "quick" if quick else "full",
        "optimized": resolved,
        "instructions_per_cell": instructions,
        "repeats": max(1, repeats),
        "filter": cell_filter,
        "machine": _machine_metadata(),
        "calibration_mops": mops,
        "cells": measured,
        "aggregate": {
            "total_instructions": total_instructions,
            "total_cycles": total_cycles,
            "total_sim_seconds": total_sim_seconds,
            "total_trace_seconds": total_trace_seconds,
            "total_trace_disk_bytes": total_trace_disk_bytes,
            "peak_trace_alloc_bytes": peak_trace_alloc,
            "instructions_per_second": instructions_per_second,
            "cycles_per_second": total_cycles / total_sim_seconds if total_sim_seconds else 0.0,
            "trace_instructions_per_second": (
                total_trace_instructions / total_trace_seconds if total_trace_seconds else 0.0
            ),
            "normalized_score": instructions_per_second / (mops * 1e6) if mops else 0.0,
        },
    }


def default_output_path(report: Dict[str, Any], directory: str = ".") -> str:
    """The canonical ``BENCH_<rev>.json`` path for a report."""
    return os.path.join(directory, f"BENCH_{report.get('revision', 'unknown')}.json")


def write_report(report: Dict[str, Any], path: str) -> str:
    """Write a report as JSON and return the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, Any]:
    """Load a report written by :func:`write_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# The performance trajectory (``benchmarks/history/``)
# ----------------------------------------------------------------------
def history_row(report: Dict[str, Any]) -> Dict[str, Any]:
    """The compact one-line summary of a report kept in the history log."""
    aggregate = report.get("aggregate", {})
    batch_cells = [c for c in report.get("cells", []) if c.get("lanes", 1) > 1]
    batch_scalar = sum(c.get("scalar_seconds", 0.0) for c in batch_cells)
    batch_batched = sum(c.get("sim_seconds", 0.0) for c in batch_cells)
    ingest_cells = [c for c in report.get("cells", []) if c.get("ingest_lines")]
    ingest_lines = sum(c["ingest_lines"] for c in ingest_cells)
    ingest_seconds = sum(c.get("trace_seconds", 0.0) for c in ingest_cells)
    return {
        "revision": report.get("revision", "unknown"),
        "created_unix": report.get("created_unix", 0.0),
        "suite": report.get("suite", "?"),
        "optimized": report.get("optimized"),
        # Filtered runs measure a cell subset; the filter and cell count keep
        # their rows distinguishable from full-suite rows in the trajectory.
        "filter": report.get("filter"),
        "cell_count": len(report.get("cells", [])),
        "calibration_mops": report.get("calibration_mops", 0.0),
        "normalized_score": aggregate.get("normalized_score", 0.0),
        "instructions_per_second": aggregate.get("instructions_per_second", 0.0),
        "trace_instructions_per_second": aggregate.get("trace_instructions_per_second", 0.0),
        "total_trace_disk_bytes": aggregate.get("total_trace_disk_bytes", 0),
        "peak_trace_alloc_bytes": aggregate.get("peak_trace_alloc_bytes", 0),
        # Lane-batching trajectory: how many cells ran batched, how many
        # lanes they carried, and their aggregate batched-vs-scalar speedup
        # (0.0 in pre-v3 rows and in runs without batch cells).
        "batch_cell_count": len(batch_cells),
        "batch_lanes": sum(c.get("lanes", 0) for c in batch_cells),
        "batch_speedup": batch_scalar / batch_batched if batch_batched else 0.0,
        "batch_best_speedup": max(
            (c.get("batch_speedup", 0.0) for c in batch_cells), default=0.0
        ),
        # Streaming-ingest trajectory (0.0 in pre-v4 rows): `.trace`-file
        # lines parsed per second and the parser's peak allocation — the
        # flat-memory property of streaming ingestion, tracked over time.
        "ingest_lines_per_second": ingest_lines / ingest_seconds if ingest_seconds else 0.0,
        "ingest_peak_alloc_bytes": max(
            (c.get("trace_peak_alloc_bytes", 0) for c in ingest_cells), default=0
        ),
    }


def append_history(report: Dict[str, Any], directory: str) -> str:
    """Append one :func:`history_row` to ``<directory>/<suite>.jsonl``.

    The history directory is the repository's performance trajectory: one
    JSON line per measured revision, appended by CI and by
    ``scripts/update_bench_baseline.py``.  Returns the file appended to.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{report.get('suite', 'unknown')}.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(history_row(report), sort_keys=True) + "\n")
    return path
