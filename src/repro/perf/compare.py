"""The throughput regression gate: compare a bench report to a baseline.

Used by CI (``repro bench --quick --check benchmarks/baseline_bench.json``)
to fail a pull request whose simulator throughput regressed by more than
the configured fraction.  Comparison prefers the machine-normalized score
(instructions/second divided by the host's calibration throughput) so a
slower CI runner does not read as a regression; raw throughput is the
fallback when either report lacks a calibration.

The gate additionally tracks the serialized on-disk size of the suite's
traces (``aggregate.total_trace_disk_bytes``, a machine-independent
quantity): when both reports carry it, growth beyond the same tolerated
fraction fails the gate, so a trace-encoding regression cannot land
silently.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

#: Default maximum tolerated regression (fraction of the baseline score).
DEFAULT_MAX_REGRESSION = 0.25


def throughput_score(report: Dict[str, Any]) -> Tuple[float, str]:
    """The comparable score of a report: ``(value, kind)``.

    ``kind`` is ``"normalized"`` (instructions per calibration-op) when the
    report carries a calibration measurement, else ``"raw"`` (instructions
    per second).
    """
    aggregate = report.get("aggregate", {})
    instructions_per_second = float(aggregate.get("instructions_per_second", 0.0))
    calibration = float(report.get("calibration_mops") or 0.0)
    if calibration > 0.0:
        return instructions_per_second / (calibration * 1e6), "normalized"
    return instructions_per_second, "raw"


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> Tuple[bool, List[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(ok, lines)`` where ``lines`` is the human-readable verdict.
    The gate fails when the current score falls more than ``max_regression``
    below the baseline score.  Improvements always pass.
    """
    current_score, current_kind = throughput_score(current)
    baseline_score, baseline_kind = throughput_score(baseline)
    if current_kind != baseline_kind:
        # One side lacks calibration: compare raw throughput on both.
        current_score = float(current.get("aggregate", {}).get("instructions_per_second", 0.0))
        baseline_score = float(baseline.get("aggregate", {}).get("instructions_per_second", 0.0))
        kind = "raw"
    else:
        kind = current_kind

    lines = [
        f"baseline: {baseline_score:.4g} ({kind}, rev {baseline.get('revision', '?')})",
        f"current:  {current_score:.4g} ({kind}, rev {current.get('revision', '?')})",
    ]
    if baseline_score <= 0.0:
        lines.append("baseline score is zero or missing — gate skipped")
        return True, lines

    ratio = current_score / baseline_score
    change = ratio - 1.0
    lines.append(f"change:   {change:+.1%} (gate: fail below -{max_regression:.0%})")
    ok = ratio >= 1.0 - max_regression
    lines.append("throughput gate PASSED" if ok else "throughput gate FAILED")

    size_ok, size_lines = _compare_trace_sizes(current, baseline, max_regression)
    lines.extend(size_lines)
    return ok and size_ok, lines


def _compare_trace_sizes(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> Tuple[bool, List[str]]:
    """The on-disk trace-size leg of the gate (skipped for v1 reports)."""
    current_bytes = float(current.get("aggregate", {}).get("total_trace_disk_bytes", 0) or 0)
    baseline_bytes = float(baseline.get("aggregate", {}).get("total_trace_disk_bytes", 0) or 0)
    if current_bytes <= 0.0 or baseline_bytes <= 0.0:
        return True, []
    growth = current_bytes / baseline_bytes - 1.0
    lines = [
        f"trace size: {current_bytes / 1024:.1f} KiB vs baseline "
        f"{baseline_bytes / 1024:.1f} KiB ({growth:+.1%}, "
        f"gate: fail above +{max_regression:.0%})"
    ]
    ok = growth <= max_regression
    lines.append("trace-size gate PASSED" if ok else "trace-size gate FAILED")
    return ok, lines
