"""The optimization kill-switch.

Every profile-guided optimization of the simulator keeps its original
implementation reachable: the out-of-order core's hot loop, the emulator's
decode/dispatch cache and the array-backed predictor tables all consult
:func:`optimizations_enabled` (or take an explicit ``optimized=`` override)
and fall back to the reference code path when it returns ``False``.

The parity tests run every tier-1 workload through both paths and assert
bit-identical IPC and misprediction counters, so the flag doubles as the
measurement baseline for ``repro bench --compare-opt``.

Set ``REPRO_OPT=0`` (or ``false``/``off``/``no``/``legacy``) to run the
reference implementations.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment variable controlling the optimized code paths.
OPT_ENV_VAR = "REPRO_OPT"

_FALSE_VALUES = frozenset({"0", "false", "off", "no", "legacy"})


def optimizations_enabled() -> bool:
    """True unless ``REPRO_OPT`` disables the optimized code paths."""
    return os.environ.get(OPT_ENV_VAR, "1").strip().lower() not in _FALSE_VALUES


def resolve_optimized(override: Optional[bool]) -> bool:
    """Resolve an explicit ``optimized=`` argument against the environment.

    Components take ``optimized=None`` by default so tests can force either
    implementation without touching the process environment.
    """
    if override is None:
        return optimizations_enabled()
    return bool(override)


@contextmanager
def forced(enabled: bool) -> Iterator[None]:
    """Force the flag for a scope (the bench harness's A/B measurements).

    Sets ``REPRO_OPT`` for the duration of the ``with`` block and restores
    the previous value afterwards.  Process-global — only meant for
    single-threaded measurement and test code.
    """
    previous = os.environ.get(OPT_ENV_VAR)
    os.environ[OPT_ENV_VAR] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[OPT_ENV_VAR]
        else:
            os.environ[OPT_ENV_VAR] = previous
