"""Human-readable rendering of bench reports."""

from __future__ import annotations

from typing import Any, Dict, List


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def render_table(report: Dict[str, Any]) -> str:
    """Render one bench report as an aligned text table."""
    header = (
        f"{'benchmark':10s} {'flavour':12s} {'scheme':12s} "
        f"{'insts':>8s} {'cycles':>8s} {'sim s':>8s} {'inst/s':>9s} {'cyc/s':>9s}"
    )
    lines = [
        f"repro bench — suite={report.get('suite', '?')} "
        f"rev={report.get('revision', '?')} "
        f"optimized={report.get('optimized', '?')}",
        header,
        "-" * len(header),
    ]
    for cell in report.get("cells", []):
        lines.append(
            f"{cell['benchmark']:10s} {cell['flavour']:12s} {cell['scheme']:12s} "
            f"{cell['instructions']:8d} {cell['cycles']:8d} "
            f"{cell['sim_seconds']:8.3f} "
            f"{_fmt_rate(cell['sim_instructions_per_second']):>9s} "
            f"{_fmt_rate(cell['sim_cycles_per_second']):>9s}"
        )
    aggregate = report.get("aggregate", {})
    lines.append("-" * len(header))
    lines.append(
        f"aggregate: {aggregate.get('total_instructions', 0)} instructions in "
        f"{aggregate.get('total_sim_seconds', 0.0):.3f}s simulate "
        f"(+{aggregate.get('total_trace_seconds', 0.0):.3f}s trace) -> "
        f"{_fmt_rate(aggregate.get('instructions_per_second', 0.0))} inst/s, "
        f"{_fmt_rate(aggregate.get('cycles_per_second', 0.0))} cyc/s"
    )
    calibration = report.get("calibration_mops")
    if calibration:
        lines.append(
            f"calibration: {calibration:.2f} Mops/s, "
            f"normalized score {aggregate.get('normalized_score', 0.0):.4f}"
        )
    return "\n".join(lines)


def render_speedup(legacy: Dict[str, Any], optimized: Dict[str, Any]) -> str:
    """Render a legacy-vs-optimized comparison of two reports."""
    lines: List[str] = [f"{'cell':40s} {'legacy inst/s':>13s} {'optimized':>10s} {'speedup':>8s}"]
    legacy_cells = {
        (c["benchmark"], c["flavour"], c["scheme"]): c for c in legacy.get("cells", [])
    }
    for cell in optimized.get("cells", []):
        key = (cell["benchmark"], cell["flavour"], cell["scheme"])
        before = legacy_cells.get(key)
        if before is None:
            continue
        slow = before["sim_instructions_per_second"]
        fast = cell["sim_instructions_per_second"]
        speedup = fast / slow if slow else float("inf")
        lines.append(
            f"{'/'.join(key):40s} {_fmt_rate(slow):>13s} {_fmt_rate(fast):>10s} "
            f"{speedup:7.2f}x"
        )
    slow = legacy.get("aggregate", {}).get("instructions_per_second", 0.0)
    fast = optimized.get("aggregate", {}).get("instructions_per_second", 0.0)
    if slow:
        lines.append(
            f"{'aggregate':40s} {_fmt_rate(slow):>13s} {_fmt_rate(fast):>10s} "
            f"{fast / slow:7.2f}x"
        )
    return "\n".join(lines)
