"""Human-readable rendering of bench reports."""

from __future__ import annotations

from typing import Any, Dict, List


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def _fmt_bytes(value: float) -> str:
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f}M"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.0f}K"
    return f"{value:.0f}"


def render_table(report: Dict[str, Any]) -> str:
    """Render one bench report as an aligned text table."""
    header = (
        f"{'benchmark':10s} {'flavour':12s} {'scheme':26s} "
        f"{'insts':>7s} {'cycles':>7s} {'sim s':>7s} {'inst/s':>8s} {'cyc/s':>8s} "
        f"{'trc/s':>8s} {'trc B':>7s} {'trc mem':>8s}"
    )
    lines = [
        f"repro bench — suite={report.get('suite', '?')} "
        f"rev={report.get('revision', '?')} "
        f"optimized={report.get('optimized', '?')}"
        + (f" filter={report['filter']}" if report.get("filter") else ""),
        header,
        "-" * len(header),
    ]
    for cell in report.get("cells", []):
        lines.append(
            f"{cell['benchmark']:10s} {cell['flavour']:12s} {cell['scheme']:26s} "
            f"{cell['instructions']:7d} {cell['cycles']:7d} "
            f"{cell['sim_seconds']:7.3f} "
            f"{_fmt_rate(cell['sim_instructions_per_second']):>8s} "
            f"{_fmt_rate(cell['sim_cycles_per_second']):>8s} "
            f"{_fmt_rate(cell.get('trace_instructions_per_second', 0.0)):>8s} "
            f"{_fmt_bytes(cell.get('trace_disk_bytes', 0)):>7s} "
            f"{_fmt_bytes(cell.get('trace_peak_alloc_bytes', 0)):>8s}"
        )
    aggregate = report.get("aggregate", {})
    lines.append("-" * len(header))
    lines.append(
        f"aggregate: {aggregate.get('total_instructions', 0)} instructions in "
        f"{aggregate.get('total_sim_seconds', 0.0):.3f}s simulate "
        f"(+{aggregate.get('total_trace_seconds', 0.0):.3f}s trace) -> "
        f"{_fmt_rate(aggregate.get('instructions_per_second', 0.0))} inst/s, "
        f"{_fmt_rate(aggregate.get('cycles_per_second', 0.0))} cyc/s"
    )
    if aggregate.get("total_trace_disk_bytes"):
        lines.append(
            f"traces: built at "
            f"{_fmt_rate(aggregate.get('trace_instructions_per_second', 0.0))} inst/s, "
            f"{_fmt_bytes(aggregate['total_trace_disk_bytes'])}B serialized, "
            f"peak build alloc {_fmt_bytes(aggregate.get('peak_trace_alloc_bytes', 0))}B"
        )
    calibration = report.get("calibration_mops")
    if calibration:
        lines.append(
            f"calibration: {calibration:.2f} Mops/s, "
            f"normalized score {aggregate.get('normalized_score', 0.0):.4f}"
        )
    return "\n".join(lines)


def render_speedup(legacy: Dict[str, Any], optimized: Dict[str, Any]) -> str:
    """Render a legacy-vs-optimized comparison of two reports."""
    lines: List[str] = [f"{'cell':40s} {'legacy inst/s':>13s} {'optimized':>10s} {'speedup':>8s}"]
    legacy_cells = {
        (c["benchmark"], c["flavour"], c["scheme"]): c for c in legacy.get("cells", [])
    }
    for cell in optimized.get("cells", []):
        key = (cell["benchmark"], cell["flavour"], cell["scheme"])
        before = legacy_cells.get(key)
        if before is None:
            continue
        slow = before["sim_instructions_per_second"]
        fast = cell["sim_instructions_per_second"]
        speedup = fast / slow if slow else float("inf")
        lines.append(
            f"{'/'.join(key):40s} {_fmt_rate(slow):>13s} {_fmt_rate(fast):>10s} "
            f"{speedup:7.2f}x"
        )
    slow = legacy.get("aggregate", {}).get("instructions_per_second", 0.0)
    fast = optimized.get("aggregate", {}).get("instructions_per_second", 0.0)
    if slow:
        lines.append(
            f"{'aggregate':40s} {_fmt_rate(slow):>13s} {_fmt_rate(fast):>10s} "
            f"{fast / slow:7.2f}x"
        )
    slow_trace = legacy.get("aggregate", {}).get("trace_instructions_per_second", 0.0)
    fast_trace = optimized.get("aggregate", {}).get("trace_instructions_per_second", 0.0)
    if slow_trace and fast_trace:
        lines.append(
            f"{'trace build':40s} {_fmt_rate(slow_trace):>13s} "
            f"{_fmt_rate(fast_trace):>10s} {fast_trace / slow_trace:7.2f}x"
        )
    slow_bytes = legacy.get("aggregate", {}).get("total_trace_disk_bytes", 0)
    fast_bytes = optimized.get("aggregate", {}).get("total_trace_disk_bytes", 0)
    if slow_bytes and fast_bytes:
        lines.append(
            f"{'trace size (smaller is better)':40s} "
            f"{_fmt_bytes(slow_bytes) + 'B':>13s} {_fmt_bytes(fast_bytes) + 'B':>10s} "
            f"{slow_bytes / fast_bytes:7.2f}x"
        )
    return "\n".join(lines)
