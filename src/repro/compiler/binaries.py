"""Matched binary pairs: the two compilations of every benchmark.

The evaluation needs, for every benchmark, a *non-if-converted* binary
(Figure 5) and an *if-converted* binary (Figure 6) built from the same
source.  :class:`BinaryFactory` takes a deterministic program generator and
produces both, so the only difference between them is the predication
transformation — exactly the experimental control of the paper.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional

from repro.compiler.if_conversion import IfConversionOptions
from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.program.program import Program

#: A deterministic program generator (e.g. a workload's ``build`` function).
ProgramGenerator = Callable[[], Program]


@dataclass
class BinaryPair:
    """The two compiled flavours of one benchmark."""

    name: str
    baseline: Program
    if_converted: Program

    @property
    def removed_branches(self) -> int:
        report = self.if_converted.metadata.get("if_conversion_report")
        return report.total_converted if report is not None else 0


class BinaryFactory:
    """Builds compiled binaries from deterministic program generators."""

    def __init__(
        self,
        if_conversion_options: Optional[IfConversionOptions] = None,
        profile_budget: int = 20_000,
    ) -> None:
        self.if_conversion_options = if_conversion_options or IfConversionOptions()
        self.profile_budget = profile_budget

    # ------------------------------------------------------------------
    def fingerprint(self, name: str, flavour: str) -> Dict[str, object]:
        """Stable description of one compilation's inputs.

        The returned mapping contains only primitives and is used by the
        experiment engine to derive content-addressed cache keys: two factory
        configurations produce the same fingerprint exactly when they would
        compile bit-identical binaries from the same deterministic generator.

        The workload registry's *content* fingerprint is part of it: for a
        file-backed workload (a ``.toml``/``.json`` trait spec or a
        ``.trace`` outcome stream) the name alone does not determine the
        program, so editing the file changes this fingerprint — and with it
        every downstream cache key — while all other workloads' artifacts
        stay valid.
        """
        # Imported lazily so the compiler package stays importable on its
        # own (the registry pulls in the whole workloads layer).
        from repro.workloads.registry import workload_fingerprint

        return {
            "benchmark": name,
            "flavour": flavour,
            "workload": workload_fingerprint(name),
            "profile_budget": self.profile_budget,
            "if_conversion": asdict(self.if_conversion_options),
        }

    # ------------------------------------------------------------------
    def build_baseline(self, name: str, generator: ProgramGenerator) -> Program:
        """Build the non-predicated binary of ``name``."""
        options = CompilerOptions.baseline()
        options.profile_budget = self.profile_budget
        return compile_program(generator(), options)

    def build_if_converted(self, name: str, generator: ProgramGenerator) -> Program:
        """Build the if-converted binary of ``name``."""
        options = CompilerOptions.if_converted()
        options.if_conversion = self.if_conversion_options
        options.profile_budget = self.profile_budget
        return compile_program(generator(), options)

    def build_pair(self, name: str, generator: ProgramGenerator) -> BinaryPair:
        """Build both flavours from the same generator."""
        return BinaryPair(
            name=name,
            baseline=self.build_baseline(name, generator),
            if_converted=self.build_if_converted(name, generator),
        )
