"""The compile driver: profile → if-convert → schedule → layout → validate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.if_conversion import IfConversionOptions, IfConversionPass
from repro.compiler.profiler import BranchProfile, profile_program
from repro.compiler.scheduling import CompareHoistingScheduler
from repro.program.program import Program
from repro.program.validate import validate_program


@dataclass
class CompilerOptions:
    """Options of a compilation run.

    The evaluation uses two flavours (section 4.1): binaries "compiled
    without enabling predication techniques" and binaries "compiled with only
    if-conversion transformations enabled"; both use profile feedback and
    full optimisation (here: compare-hoisting scheduling).
    """

    enable_if_conversion: bool = False
    if_conversion: IfConversionOptions = field(default_factory=IfConversionOptions)
    enable_scheduling: bool = True
    #: Instruction budget of the profiling run.
    profile_budget: int = 20_000
    #: Validate the program after compilation (cheap; recommended).
    validate: bool = True

    @classmethod
    def baseline(cls) -> "CompilerOptions":
        """The non-predicated binary set."""
        return cls(enable_if_conversion=False)

    @classmethod
    def if_converted(cls) -> "CompilerOptions":
        """The if-converted binary set."""
        return cls(enable_if_conversion=True)


def compile_program(
    program: Program,
    options: Optional[CompilerOptions] = None,
    profile: Optional[BranchProfile] = None,
) -> Program:
    """Compile ``program`` in place and return it.

    A pre-computed :class:`BranchProfile` may be supplied (useful when the
    caller already profiled the program); otherwise a profiling run is
    performed first.
    """
    options = options or CompilerOptions()

    if options.enable_if_conversion:
        if profile is None and not options.if_conversion.ignore_profile:
            if not program.laid_out:
                program.layout()
            profile = profile_program(program, options.profile_budget)
        converter = IfConversionPass(options.if_conversion, profile)
        converter.run(program)

    if options.enable_scheduling:
        scheduler = CompareHoistingScheduler()
        scheduler.run(program)

    program.layout()
    if options.validate:
        validate_program(program)

    program.metadata["compiler_options"] = options
    program.metadata["predication_enabled"] = options.enable_if_conversion
    return program
