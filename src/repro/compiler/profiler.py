"""Profile collection: per-branch execution counts and taken rates.

The compiler passes (if-conversion in particular) are profile-guided, like
the paper's set-up ("all benchmarks have been compiled ... using maximum
optimization levels and profile information").  The profiler simply runs the
program on the functional emulator for a configurable instruction budget and
aggregates per-static-branch statistics, keyed by the branch instruction's
unique id so the data survives later program transformations and re-layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.emulator.executor import Emulator
from repro.isa.branches import BranchInstruction
from repro.program.program import Program


@dataclass
class BranchSiteProfile:
    """Profile of one static branch instruction."""

    executions: int = 0
    taken: int = 0

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """Bias towards the dominant direction, in [0.5, 1.0]."""
        if not self.executions:
            return 1.0
        rate = self.taken_rate
        return max(rate, 1.0 - rate)


@dataclass
class BranchProfile:
    """Profile of a whole program, keyed by branch instruction uid."""

    sites: Dict[int, BranchSiteProfile] = field(default_factory=dict)
    profiled_instructions: int = 0

    def site(self, branch: BranchInstruction) -> BranchSiteProfile:
        return self.sites.setdefault(branch.uid, BranchSiteProfile())

    def lookup(self, branch: BranchInstruction) -> Optional[BranchSiteProfile]:
        return self.sites.get(branch.uid)

    def hard_branches(self, bias_threshold: float = 0.9, min_executions: int = 8):
        """Uids of branches executed often enough and biased below the
        threshold — the if-conversion candidates."""
        return {
            uid
            for uid, site in self.sites.items()
            if site.executions >= min_executions and site.bias < bias_threshold
        }


def profile_program(program: Program, budget: int = 20_000) -> BranchProfile:
    """Run ``program`` for ``budget`` fetched instructions and profile it."""
    if not program.laid_out:
        program.layout()
    emulator = Emulator(program)
    profile = BranchProfile()
    for dyn in emulator.run(budget):
        profile.profiled_instructions += 1
        inst = dyn.inst
        if isinstance(inst, BranchInstruction) and inst.is_conditional:
            site = profile.site(inst)
            site.executions += 1
            if dyn.taken:
                site.taken += 1
    return profile
