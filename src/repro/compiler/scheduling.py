"""Compare-hoisting list scheduler.

Early-resolved branches — the paper's second source of accuracy improvement —
exist only when the compiler schedules a compare "enough in advance" of its
consuming branch that the predicate is computed before the branch renames.
This pass performs a dependence-preserving reordering of every basic block
that moves compare instructions as early as their operands allow, while
keeping everything else in program order as much as possible:

* true (RAW), anti (WAR) and output (WAW) register dependences are honoured,
  including dependences through qualifying predicates;
* memory operations keep their original relative order (no disambiguation is
  attempted);
* unpredicated branches are scheduling barriers: nothing moves across them
  (predicated *region branches* are ordered by their predicate dependence,
  which keeps them after their guard's compare).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.isa.branches import BranchInstruction
from repro.isa.instructions import Instruction
from repro.isa.registers import Register
from repro.program.basic_block import BasicBlock
from repro.program.program import Program
from repro.program.routine import Routine


@dataclass
class SchedulingReport:
    """Summary of what the scheduler changed."""

    blocks_scheduled: int = 0
    compares_hoisted: int = 0
    total_hoist_distance: int = 0

    @property
    def mean_hoist_distance(self) -> float:
        if not self.compares_hoisted:
            return 0.0
        return self.total_hoist_distance / self.compares_hoisted


class CompareHoistingScheduler:
    """Reorders block instructions to hoist compares ahead of their branches."""

    def __init__(self) -> None:
        self.report = SchedulingReport()

    # ------------------------------------------------------------------
    def run(self, program: Program) -> SchedulingReport:
        for routine in program.routines.values():
            self._schedule_routine(routine)
        program.laid_out = False
        program.metadata["scheduled"] = True
        program.metadata["scheduling_report"] = self.report
        return self.report

    def _schedule_routine(self, routine: Routine) -> None:
        for block in routine.blocks:
            self._schedule_block(block)
        routine.invalidate_cfg()

    # ------------------------------------------------------------------
    def _schedule_block(self, block: BasicBlock) -> None:
        instructions = list(block.instructions)
        if len(instructions) < 3:
            return
        predecessors = self._dependence_predecessors(instructions)

        original_index = {inst.uid: i for i, inst in enumerate(instructions)}
        scheduled: List[Instruction] = []
        remaining: Set[int] = {inst.uid for inst in instructions}
        done: Set[int] = set()

        while remaining:
            ready = [
                inst
                for inst in instructions
                if inst.uid in remaining and predecessors[inst.uid] <= done
            ]
            if not ready:  # pragma: no cover - defensive, DAG is acyclic
                ready = [
                    inst for inst in instructions if inst.uid in remaining
                ][:1]
            ready.sort(key=lambda inst: (0 if inst.is_compare else 1, original_index[inst.uid]))
            chosen = ready[0]
            scheduled.append(chosen)
            remaining.discard(chosen.uid)
            done.add(chosen.uid)
            if chosen.is_compare:
                distance = original_index[chosen.uid] - (len(scheduled) - 1)
                if distance > 0:
                    self.report.compares_hoisted += 1
                    self.report.total_hoist_distance += distance

        if [i.uid for i in scheduled] != [i.uid for i in instructions]:
            block.replace_instructions(scheduled)
        self.report.blocks_scheduled += 1

    # ------------------------------------------------------------------
    def _dependence_predecessors(
        self, instructions: List[Instruction]
    ) -> Dict[int, Set[int]]:
        """For each instruction uid, the set of uids that must precede it."""
        predecessors: Dict[int, Set[int]] = {inst.uid: set() for inst in instructions}
        last_writer: Dict[Register, int] = {}
        last_readers: Dict[Register, List[int]] = {}
        last_memory: int = -1
        last_barrier: int = -1

        for index, inst in enumerate(instructions):
            preds = predecessors[inst.uid]
            if last_barrier >= 0:
                preds.add(instructions[last_barrier].uid)

            reads = inst.source_registers(include_qp=True)
            writes = inst.destination_registers()

            for reg in reads:
                writer = last_writer.get(reg)
                if writer is not None:
                    preds.add(writer)
            for reg in writes:
                writer = last_writer.get(reg)
                if writer is not None:
                    preds.add(writer)  # WAW
                for reader in last_readers.get(reg, ()):
                    preds.add(reader)  # WAR

            if inst.is_memory:
                if last_memory >= 0:
                    preds.add(instructions[last_memory].uid)
                last_memory = index

            if isinstance(inst, BranchInstruction) and not inst.is_predicated:
                # Barrier: everything earlier precedes it, it precedes
                # everything later.
                for earlier in instructions[:index]:
                    preds.add(earlier.uid)
                last_barrier = index

            for reg in writes:
                last_writer[reg] = inst.uid
                last_readers[reg] = []
            for reg in reads:
                last_readers.setdefault(reg, []).append(inst.uid)

        return predecessors
