"""Profile-guided if-conversion (hyperblock formation).

The pass walks each routine's CFG looking for three region shapes rooted at a
conditional branch:

* **hammock** — if-then: one side block, both paths meeting at a join;
* **diamond** — if-then-else: two side blocks meeting at a join;
* **escape hammock** — if-then where the "then" side leaves the region with
  a return or a jump (Figure 1a); converting it produces a guarded *region
  branch* (Figure 1b's ``(p3) br.ret``).

A region is converted when its head branch is *hard to predict* according to
the profile (bias below the threshold) and the region is small enough.  The
conversion:

1. finds the compare that produces the branch's guarding predicate and, if
   needed, rewrites its ``p0`` don't-care target into a real predicate so
   the complementary guard exists;
2. guards every instruction of the side block(s) with the appropriate
   predicate (taken-path blocks with the branch's own predicate, fall-through
   blocks with its complement);
3. turns nested compares into ``cmp.unc`` so a false outer guard clears the
   inner predicates (exactly the nesting of Figure 1b);
4. removes the branch, merges the side blocks into the head, and removes
   them from the routine.

Running the pass more than once converts nested regions: inner conversions
first create larger single blocks, which outer passes can then absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.compiler.predicate_alloc import PredicateAllocator
from repro.compiler.profiler import BranchProfile
from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.compare import CompareInstruction, CompareType
from repro.isa.instructions import Instruction
from repro.isa.operands import Label
from repro.isa.registers import P0, Register
from repro.program.basic_block import BasicBlock
from repro.program.cfg import DiamondRegion, EscapeRegion
from repro.program.program import Program
from repro.program.routine import Routine


@dataclass
class IfConversionOptions:
    """Tuning knobs of the if-conversion pass."""

    #: Convert branches whose profile bias is below this threshold
    #: (bias = probability of the dominant direction).
    bias_threshold: float = 0.925
    #: Minimum profiled executions for a branch to be considered.
    min_executions: int = 8
    #: Maximum number of instructions allowed in the side block(s).
    max_region_size: int = 16
    #: How many times the pass is repeated (nested regions).
    max_passes: int = 2
    #: When True, structural eligibility is enough (used by unit tests).
    ignore_profile: bool = False


@dataclass
class IfConversionReport:
    """What the pass did."""

    converted_hammocks: int = 0
    converted_diamonds: int = 0
    converted_escapes: int = 0
    rejected_by_profile: int = 0
    rejected_by_shape: int = 0
    region_branches_created: int = 0
    removed_branches: List[int] = field(default_factory=list)

    @property
    def total_converted(self) -> int:
        return self.converted_hammocks + self.converted_diamonds + self.converted_escapes


class IfConversionPass:
    """Applies if-conversion to a program in place."""

    def __init__(
        self,
        options: Optional[IfConversionOptions] = None,
        profile: Optional[BranchProfile] = None,
    ) -> None:
        self.options = options or IfConversionOptions()
        self.profile = profile
        self.report = IfConversionReport()

    # ------------------------------------------------------------------
    def run(self, program: Program) -> IfConversionReport:
        for routine in program.routines.values():
            for _ in range(self.options.max_passes):
                changed = self._convert_routine(routine)
                if not changed:
                    break
        program.laid_out = False
        program.metadata["if_converted"] = True
        program.metadata["if_conversion_report"] = self.report
        return self.report

    # ------------------------------------------------------------------
    def _convert_routine(self, routine: Routine) -> bool:
        changed = False
        self._remove_empty_blocks(routine)
        index = 0
        while index < len(routine.blocks):
            block = routine.blocks[index]
            routine.invalidate_cfg()
            cfg = routine.cfg
            region = cfg.diamond_region(block.label)
            if (
                region is not None
                and self._is_forward_branch(routine, region.branch)
                and self._region_allowed(routine, region.branch, region.side_labels)
            ):
                self._convert_diamond(routine, region)
                changed = True
                continue  # re-examine the same (grown) block
            escape = cfg.escape_hammock(block.label)
            if (
                escape is not None
                and self._is_forward_branch(routine, escape.branch)
                and self._escape_allowed(routine, escape)
            ):
                self._convert_escape(routine, escape)
                changed = True
                continue
            index += 1
        routine.invalidate_cfg()
        return changed

    def _is_forward_branch(self, routine: Routine, branch: BranchInstruction) -> bool:
        """True when the branch jumps forward in layout order.

        Loop back-edges are never if-converted (removing them would turn the
        loop structure inside out, and their bias makes them poor candidates
        anyway).
        """
        if branch.target is None or branch.block_label is None:
            return False
        try:
            head_index = routine.block_index(branch.block_label)
            target_index = routine.block_index(branch.target.name)
        except KeyError:  # pragma: no cover - malformed program
            return False
        return target_index > head_index

    def _remove_empty_blocks(self, routine: Routine) -> None:
        """Remove empty fall-through blocks left behind by earlier passes.

        An empty block is a pure fall-through: branches targeting it are
        retargeted to the block that follows it in layout order, and the
        block is deleted.  This keeps nested regions detectable (an inner
        conversion's empty join block would otherwise hide the outer
        region's shape).
        """
        changed = True
        while changed:
            changed = False
            for index, block in enumerate(routine.blocks):
                if block.instructions or index == 0:
                    continue
                if index + 1 >= len(routine.blocks):
                    continue
                successor = routine.blocks[index + 1].label
                for inst in routine.instructions():
                    if (
                        isinstance(inst, BranchInstruction)
                        and inst.target is not None
                        and inst.target.name == block.label
                    ):
                        inst.target = Label(successor)
                        inst.srcs = [Label(successor)]
                routine.remove_block(block.label)
                changed = True
                break
        routine.invalidate_cfg()

    # ------------------------------------------------------------------
    def _branch_is_hard(self, branch: BranchInstruction) -> bool:
        if self.options.ignore_profile or self.profile is None:
            return True
        site = self.profile.lookup(branch)
        if site is None or site.executions < self.options.min_executions:
            self.report.rejected_by_profile += 1
            return False
        if site.bias >= self.options.bias_threshold:
            self.report.rejected_by_profile += 1
            return False
        return True

    def _region_allowed(
        self, routine: Routine, branch: BranchInstruction, side_labels: List[str]
    ) -> bool:
        size = sum(len(routine.block(label)) for label in side_labels)
        if size > self.options.max_region_size:
            self.report.rejected_by_shape += 1
            return False
        if self._producer_compare(routine, branch) is None:
            self.report.rejected_by_shape += 1
            return False
        return self._branch_is_hard(branch)

    def _escape_allowed(self, routine: Routine, region: EscapeRegion) -> bool:
        escape_block = routine.block(region.escape)
        if len(escape_block) > self.options.max_region_size:
            self.report.rejected_by_shape += 1
            return False
        if self._producer_compare(routine, region.branch) is None:
            self.report.rejected_by_shape += 1
            return False
        return self._branch_is_hard(region.branch)

    # ------------------------------------------------------------------
    def _producer_compare(
        self, routine: Routine, branch: BranchInstruction
    ) -> Optional[CompareInstruction]:
        """Find the compare in the branch's own block that defines its guard."""
        head = routine.block(branch.block_label) if branch.block_label else None
        if head is None:
            return None
        guard = branch.qp
        for inst in reversed(head.instructions):
            if inst is branch:
                continue
            if isinstance(inst, CompareInstruction) and guard in (inst.pt, inst.pf):
                return inst
        return None

    def _complement_guard(
        self, routine: Routine, compare: CompareInstruction, guard: Register
    ) -> Register:
        """Return (allocating if necessary) the predicate complementary to
        ``guard`` as produced by ``compare``."""
        complement = compare.pf if guard == compare.pt else compare.pt
        if not complement.is_hardwired:
            return complement
        allocator = PredicateAllocator(routine)
        fresh = allocator.allocate()
        if guard == compare.pt:
            compare.dests[1] = fresh
        else:
            compare.dests[0] = fresh
        return fresh

    # ------------------------------------------------------------------
    def _guard_instructions(self, instructions: List[Instruction], guard: Register) -> int:
        """Predicate ``instructions`` with ``guard``; return how many branches
        became region branches."""
        region_branches = 0
        for inst in instructions:
            if inst.qp == P0:
                inst.qp = guard
                if isinstance(inst, CompareInstruction):
                    inst.ctype = CompareType.UNC
                if isinstance(inst, BranchInstruction):
                    region_branches += 1
                inst.annotations["if_converted_guard"] = guard.index
            # Instructions already predicated were guarded by an inner
            # (nested) conversion; their guard compare has just been made
            # unconditional-type and guarded by the outer predicate, so a
            # false outer guard clears the inner predicates.
        return region_branches

    def _merge_side(
        self,
        routine: Routine,
        head: BasicBlock,
        side_label: str,
        guard: Register,
        drop_trailing_jump_to: Optional[str],
    ) -> None:
        side = routine.block(side_label)
        instructions = list(side.instructions)
        if (
            drop_trailing_jump_to is not None
            and instructions
            and isinstance(instructions[-1], BranchInstruction)
            and instructions[-1].kind is BranchKind.UNCOND
            and not instructions[-1].is_predicated
            and instructions[-1].target is not None
            and instructions[-1].target.name == drop_trailing_jump_to
        ):
            instructions = instructions[:-1]
        self.report.region_branches_created += self._guard_instructions(instructions, guard)
        for inst in instructions:
            head.append(inst)
        routine.remove_block(side_label)

    def _ensure_fallthrough(self, routine: Routine, head: BasicBlock, join_label: str) -> None:
        """Guarantee control reaches ``join_label`` after the merged block."""
        head_index = routine.block_index(head.label)
        next_label = (
            routine.blocks[head_index + 1].label
            if head_index + 1 < len(routine.blocks)
            else None
        )
        if next_label != join_label:
            head.append(BranchInstruction(BranchKind.UNCOND, Label(join_label)))

    # ------------------------------------------------------------------
    def _convert_diamond(self, routine: Routine, region: DiamondRegion) -> None:
        head = routine.block(region.head)
        branch = region.branch
        compare = self._producer_compare(routine, branch)
        assert compare is not None  # checked by _region_allowed
        guard = branch.qp
        complement = self._complement_guard(routine, compare, guard)

        head.remove(branch)
        self.report.removed_branches.append(branch.uid)

        if region.else_side is None:
            side_guard = guard if region.then_on_taken_path else complement
            self._merge_side(
                routine, head, region.then_side, side_guard, drop_trailing_jump_to=region.join
            )
            self.report.converted_hammocks += 1
        else:
            # Fall-through (not-taken) side executes under the complement;
            # the taken side under the branch's own guard.
            self._merge_side(
                routine, head, region.then_side, complement, drop_trailing_jump_to=region.join
            )
            self._merge_side(
                routine, head, region.else_side, guard, drop_trailing_jump_to=region.join
            )
            self.report.converted_diamonds += 1

        head.annotations["if_converted"] = True
        self._ensure_fallthrough(routine, head, region.join)
        routine.invalidate_cfg()

    def _convert_escape(self, routine: Routine, region: EscapeRegion) -> None:
        head = routine.block(region.head)
        branch = region.branch
        compare = self._producer_compare(routine, branch)
        assert compare is not None
        guard = branch.qp
        complement = self._complement_guard(routine, compare, guard)

        head.remove(branch)
        self.report.removed_branches.append(branch.uid)
        # The escape side (fall-through) executes when the branch would not
        # have been taken, i.e. under the complement; its trailing return or
        # jump is kept and becomes a guarded region branch.
        self._merge_side(
            routine, head, region.escape, complement, drop_trailing_jump_to=None
        )
        head.annotations["if_converted"] = True
        self.report.converted_escapes += 1
        self._ensure_fallthrough(routine, head, region.continuation)
        routine.invalidate_cfg()
