"""Predicate register allocation for compiler passes.

If-conversion needs fresh predicate registers in two situations:

* a compare used ``p0`` as its don't-care second target, but the
  complementary predicate is now needed to guard the other side of the
  region;
* an inner region's guard must not collide with an outer region's guard.

The allocator scans a routine for predicate registers already referenced and
hands out unused ones.  Predicate registers p1–p5 are conventionally left to
the (synthetic) programmer, so allocation starts at p6 unless everything
below is free.
"""

from __future__ import annotations

from typing import Set

from repro.isa.registers import NUM_PREDICATE_REGISTERS, PR, Register, RegisterKind
from repro.program.routine import Routine


class PredicateAllocationError(Exception):
    """Raised when a routine has no free predicate registers left."""


class PredicateAllocator:
    """Hands out predicate registers unused by a routine."""

    def __init__(self, routine: Routine, first_index: int = 6) -> None:
        self.routine = routine
        self.first_index = first_index
        self._used: Set[int] = {0}
        self._collect_used()

    def _collect_used(self) -> None:
        for inst in self.routine.instructions():
            if inst.qp.kind is RegisterKind.PREDICATE:
                self._used.add(inst.qp.index)
            for reg in list(inst.dests) + [s for s in inst.srcs if isinstance(s, Register)]:
                if reg.kind is RegisterKind.PREDICATE:
                    self._used.add(reg.index)

    # ------------------------------------------------------------------
    def allocate(self) -> Register:
        """Return a predicate register not yet used in the routine."""
        for index in range(self.first_index, NUM_PREDICATE_REGISTERS):
            if index not in self._used:
                self._used.add(index)
                return PR(index)
        # Fall back to the low range before giving up.
        for index in range(1, self.first_index):
            if index not in self._used:
                self._used.add(index)
                return PR(index)
        raise PredicateAllocationError(
            f"routine {self.routine.name!r} has no free predicate registers"
        )

    def mark_used(self, reg: Register) -> None:
        if reg.kind is RegisterKind.PREDICATE:
            self._used.add(reg.index)

    @property
    def used_count(self) -> int:
        return len(self._used)
