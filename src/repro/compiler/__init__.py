"""Compiler substrate: profiling, if-conversion and instruction scheduling.

The original evaluation compiles SPEC2000 with Intel's Electron compiler
twice: once without predication and once "with only if-conversion
transformations enabled", both with profile feedback (section 4.1).  This
package reproduces the relevant parts of that tool-chain:

* :mod:`repro.compiler.profiler` — edge/branch profiling by running the
  program on the functional emulator;
* :mod:`repro.compiler.if_conversion` — profile-guided if-conversion of
  hammock, diamond and escape regions, including nested regions
  (producing ``cmp.unc`` compares and guarded *region branches* exactly as
  in Figure 1b);
* :mod:`repro.compiler.scheduling` — a dependence-preserving list scheduler
  that hoists compare instructions away from their consuming branches,
  creating the *early-resolved* branches the predicate predictor exploits;
* :mod:`repro.compiler.predicate_alloc` — predicate register allocation for
  the predicates introduced by if-conversion;
* :mod:`repro.compiler.pipeline` — the driver assembling these passes into
  the two binary flavours used by the evaluation;
* :mod:`repro.compiler.binaries` — a small factory producing matched
  (non-if-converted, if-converted) binary pairs for a workload.
"""

from repro.compiler.profiler import BranchProfile, BranchSiteProfile, profile_program
from repro.compiler.if_conversion import IfConversionOptions, IfConversionPass
from repro.compiler.scheduling import CompareHoistingScheduler
from repro.compiler.predicate_alloc import PredicateAllocator
from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.compiler.binaries import BinaryFactory, BinaryPair

__all__ = [
    "BranchProfile",
    "BranchSiteProfile",
    "profile_program",
    "IfConversionOptions",
    "IfConversionPass",
    "CompareHoistingScheduler",
    "PredicateAllocator",
    "CompilerOptions",
    "compile_program",
    "BinaryFactory",
    "BinaryPair",
]
