"""The scenario model: declarative sweep descriptions and their parsing.

A scenario file (TOML or JSON) has three sections::

    [scenario]                      # what to run
    name = "rob-scaling"
    description = "..."
    benchmarks = ["gzip", "twolf", "swim"]  # registry names or workload
    #   spec/trace file paths (see repro.workloads.registry)
    flavour = "if-converted"        # optional, default "if-converted"
    instructions = 12000            # optional fetched-instruction budget
    schemes = ["conventional", "predicate"]   # optional, default the
    #   paper's trio; "predicate-aware" and "wish" may also be requested
    sampling = "4:4096:512"         # optional sampled simulation:
    #   interval[:window[:warmup]] — simulate every 4th 4096-row window
    #   after a 512-row warmup; results are approximate and flagged

    [base.pipeline]                 # optional fixed machine overrides,
    # fetch_width = 6               # applied to every point of the grid

    [axes.pipeline]                 # swept machine parameters
    rob_entries = [64, 128, 256]

    [axes.scheme]                   # swept scheme-factory options
    # entries = [512, 3634]

Every ``[axes.pipeline]`` entry is either a *simple* axis — the key names a
:class:`~repro.pipeline.config.PipelineConfig` field and the value lists the
settings to sweep — or a *composite* axis, whose values are tables of
several overrides applied together (e.g. sweeping the branch and predicate
misprediction penalties in lockstep, which keeps the grid free of
combinations the paper's recovery model would never pair).  Validation is
eager and total: unknown section keys, unknown config fields, non-list
axes, unknown scheme kinds and scheme options *no* scenario scheme's factory
accepts all raise :class:`ScenarioError` at load time, before any simulation
runs.  (An option some schemes lack is fine: those schemes ignore the axis
and their cells collapse onto one cached simulation per point.)

TOML parsing uses :mod:`tomllib` (Python ≥ 3.11).  On older interpreters
TOML scenario files raise a clear :class:`ScenarioError`; JSON scenarios
(and everything downstream of parsing) work everywhere.
"""

from __future__ import annotations

import inspect
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

from repro.engine.jobs import FLAVOURS, IF_CONVERTED
from repro.pipeline.machine import MachineSpec, overridable_fields
from repro.pipeline.windowed import SamplingSpec


class ScenarioError(ValueError):
    """A scenario file is malformed, unknown, or semantically invalid."""


#: Directory holding the built-in scenario files shipped with the package.
_BUILTIN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "scenarios")

#: The paper's own schemes — the default when a scenario omits ``schemes``.
PAPER_SCHEME_KINDS = ("conventional", "pep-pa", "predicate")

#: Every scheme kind a scenario may request (mirrors the factory registry,
#: :data:`repro.experiments.setup.SCHEME_FACTORIES`).
SCHEME_KINDS = ("conventional", "pep-pa", "predicate", "predicate-aware", "wish")

_SCENARIO_KEYS = {
    "name",
    "title",
    "description",
    "benchmarks",
    "flavour",
    "instructions",
    "schemes",
    "sampling",
}

#: Default fetched-instruction budget of a sweep point.  Deliberately the
#: bench harness's quick budget: large enough for stable misprediction
#: rates on the synthetic suite, small enough that a 4-axis-value x
#: 2-scheme x 3-benchmark grid runs in seconds.
DEFAULT_INSTRUCTIONS = 12_000


@dataclass(frozen=True)
class Axis:
    """One swept dimension of a scenario.

    ``values`` holds one :class:`~repro.pipeline.machine.MachineSpec`-style
    override mapping per grid position for pipeline axes (a single-field
    mapping for simple axes), or one option mapping per position for scheme
    axes.  ``display`` gives the per-position row labels used in reports.
    """

    kind: str  # "pipeline" | "scheme"
    name: str
    values: Tuple[Mapping[str, Any], ...]
    display: Tuple[str, ...]


@dataclass(frozen=True)
class Scenario:
    """A parsed, validated sweep scenario."""

    name: str
    title: str = ""
    description: str = ""
    benchmarks: Tuple[str, ...] = ()
    flavour: str = IF_CONVERTED
    instructions: int = DEFAULT_INSTRUCTIONS
    schemes: Tuple[str, ...] = PAPER_SCHEME_KINDS
    #: Sampled-simulation spec (``None`` = full simulation).  Sampled sweep
    #: results are approximate and flagged as such in reports.
    sampling: "SamplingSpec | None" = None
    base: MachineSpec = field(default_factory=MachineSpec)
    axes: Tuple[Axis, ...] = ()

    def pipeline_axes(self) -> Tuple[Axis, ...]:
        return tuple(axis for axis in self.axes if axis.kind == "pipeline")

    def scheme_axes(self) -> Tuple[Axis, ...]:
        return tuple(axis for axis in self.axes if axis.kind == "scheme")


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(f"{what} must be a table/object, got {type(value).__name__}")
    return value


def _machine_spec(overrides: Mapping[str, Any], what: str) -> MachineSpec:
    try:
        return MachineSpec.make(**dict(overrides))
    except ValueError as error:
        raise ScenarioError(f"{what}: {error}") from None


def _display_value(mapping: Mapping[str, Any]) -> str:
    """Row label of one axis position: the value when all fields agree
    (the common single-field and lockstep cases), ``k=v`` pairs otherwise."""
    unique = {repr(value) for value in mapping.values()}
    if len(unique) == 1:
        return str(next(iter(mapping.values())))
    return ",".join(f"{key}={value}" for key, value in mapping.items())


def _parse_pipeline_axis(name: str, raw: Any) -> Axis:
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)) or not raw:
        raise ScenarioError(
            f"axis {name!r} must be a non-empty list of values, got {raw!r}"
        )
    values: List[Mapping[str, Any]] = []
    for position in raw:
        if isinstance(position, Mapping):
            # Composite axis: each position is a table of overrides applied
            # together; the axis name itself is free-form.
            overrides = dict(position)
        else:
            overrides = {name: position}
        _machine_spec(overrides, f"axis {name!r}")  # field/value validation
        values.append(overrides)
    if len({tuple(sorted(v.items())) for v in values}) != len(values):
        raise ScenarioError(f"axis {name!r} has duplicate values")
    # Every position of one axis must move the same fields: ragged
    # composite positions make rows incomparable, and their display labels
    # (which key result collection) could collide across different machines.
    field_sets = {frozenset(v) for v in values}
    if len(field_sets) != 1:
        raise ScenarioError(
            f"axis {name!r}: every position must set the same field(s); got "
            f"{sorted(sorted(fields) for fields in field_sets)}"
        )
    display = tuple(_display_value(v) for v in values)
    if len(set(display)) != len(display):
        raise ScenarioError(
            f"axis {name!r} has positions with identical display labels {display}"
        )
    return Axis(kind="pipeline", name=name, values=tuple(values), display=display)


def _scheme_factory(kind: str):
    # Imported lazily for the same reason SchemeSpec.build() does: the
    # experiments package imports the engine.
    from repro.experiments.setup import scheme_factory

    return scheme_factory(kind)


def _parse_scheme_axis(name: str, raw: Any, schemes: Sequence[str]) -> Axis:
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)) or not raw:
        raise ScenarioError(
            f"scheme axis {name!r} must be a non-empty list of values, got {raw!r}"
        )
    # An axis option must be accepted by at least one scheme of the
    # scenario; schemes whose factory does not take it simply ignore the
    # axis (their cells collapse onto one cached simulation per point).
    flag_option = False
    choice_option = False
    accepting = []
    all_options: set = set()
    for kind in schemes:
        accepted = inspect.signature(_scheme_factory(kind)).parameters
        all_options.update(accepted)
        if name in accepted:
            accepting.append(kind)
            # Factories agree on option shapes: feature flags default to a
            # bool, string choices to a string, geometry sizes to None
            # (resolve to positive ints).
            flag_option = isinstance(accepted[name].default, bool)
            choice_option = isinstance(accepted[name].default, str)
    if not accepting:
        raise ScenarioError(
            f"scheme axis {name!r} is not an option of any scenario scheme "
            f"({', '.join(schemes)}); options: {', '.join(sorted(all_options))}"
        )
    choices: Tuple[str, ...] = ()
    if choice_option:
        from repro.experiments.setup import SCHEME_OPTION_CHOICES

        choices = SCHEME_OPTION_CHOICES.get(name, ())
    for position in raw:
        # Anything non-scalar — floats, tables, strings outside the
        # declared choices — would only blow up deep inside a worker's
        # scheme build, violating the eager-validation contract of this
        # module.
        if flag_option:
            if not isinstance(position, bool):
                raise ScenarioError(
                    f"scheme axis {name!r} is a feature flag: values must be "
                    f"booleans, got {position!r}"
                )
            continue
        if choice_option:
            if not isinstance(position, str) or (choices and position not in choices):
                raise ScenarioError(
                    f"scheme axis {name!r}: values must be among "
                    f"{list(choices)}, got {position!r}"
                )
            continue
        if isinstance(position, bool) or not isinstance(position, int):
            raise ScenarioError(
                f"scheme axis {name!r}: values must be integers, got {position!r}"
            )
        if position < 1:
            raise ScenarioError(
                f"scheme axis {name!r}: {position} is not a positive integer"
            )
    values = tuple({name: position} for position in raw)
    if len({repr(position) for position in raw}) != len(raw):
        raise ScenarioError(f"scheme axis {name!r} has duplicate values")
    display = tuple(str(position) for position in raw)
    if len(set(display)) != len(display):
        raise ScenarioError(
            f"scheme axis {name!r} has positions with identical display labels {display}"
        )
    return Axis(kind="scheme", name=name, values=values, display=display)


def parse_scenario(data: Mapping[str, Any], source: str = "<scenario>") -> Scenario:
    """Validate a decoded scenario document and return the :class:`Scenario`."""
    data = _require_mapping(data, f"{source}: scenario document")
    unknown = set(data) - {"scenario", "base", "axes"}
    if unknown:
        raise ScenarioError(
            f"{source}: unknown top-level section(s) {sorted(unknown)}; "
            "expected [scenario], [base], [axes]"
        )
    header = _require_mapping(data.get("scenario", {}), f"{source}: [scenario]")
    unknown = set(header) - _SCENARIO_KEYS
    if unknown:
        raise ScenarioError(
            f"{source}: unknown [scenario] key(s) {sorted(unknown)}; "
            f"expected {sorted(_SCENARIO_KEYS)}"
        )
    name = header.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError(f"{source}: [scenario] needs a non-empty string 'name'")
    # The name becomes the report filename (results/sweep_<name>.txt):
    # restrict it so a scenario can neither crash the writer nor escape the
    # output directory.
    if not re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9._-]*", name):
        raise ScenarioError(
            f"{source}: scenario name {name!r} may only contain letters, "
            "digits, '.', '_' and '-' (it names the report file)"
        )

    flavour = header.get("flavour", IF_CONVERTED)
    if flavour not in FLAVOURS:
        raise ScenarioError(
            f"{source}: unknown flavour {flavour!r}; expected one of {FLAVOURS}"
        )

    schemes = tuple(header.get("schemes", PAPER_SCHEME_KINDS))
    bad = [kind for kind in schemes if kind not in SCHEME_KINDS]
    if bad or not schemes:
        raise ScenarioError(
            f"{source}: unknown scheme kind(s) {bad}; expected among {SCHEME_KINDS}"
        )
    if len(set(schemes)) != len(schemes):
        raise ScenarioError(f"{source}: duplicate scheme(s) in {list(schemes)}")

    benchmarks = tuple(header.get("benchmarks", ()))
    # Type-check before the duplicate set(): an unhashable entry (a nested
    # list/table) would otherwise escape as a raw TypeError.
    for benchmark in benchmarks:
        if not isinstance(benchmark, str):
            raise ScenarioError(
                f"{source}: benchmark entries must be strings, got {benchmark!r}"
            )
    if len(set(benchmarks)) != len(benchmarks):
        raise ScenarioError(f"{source}: duplicate benchmark(s) in {list(benchmarks)}")
    if benchmarks:
        # Benchmarks resolve through the workload registry: built-in names,
        # shipped library names, and user spec/trace file paths are all
        # valid; validation is eager so a bad reference fails at load time,
        # not deep inside a worker's compile step.
        from repro.workloads.registry import UnknownWorkloadError, resolve_workload
        from repro.workloads.trace_ingest import TraceIngestError
        from repro.workloads.workload_spec import WorkloadSpecError

        for benchmark in benchmarks:
            try:
                resolve_workload(benchmark)
            except (UnknownWorkloadError, WorkloadSpecError, TraceIngestError) as error:
                raise ScenarioError(f"{source}: {error}") from None

    instructions = header.get("instructions", DEFAULT_INSTRUCTIONS)
    if not isinstance(instructions, int) or isinstance(instructions, bool) or instructions < 1:
        raise ScenarioError(
            f"{source}: 'instructions' must be a positive integer, got {instructions!r}"
        )

    sampling = None
    raw_sampling = header.get("sampling")
    if raw_sampling is not None:
        if not isinstance(raw_sampling, str):
            raise ScenarioError(
                f"{source}: 'sampling' must be an 'interval[:window[:warmup]]' "
                f"string, got {raw_sampling!r}"
            )
        try:
            sampling = SamplingSpec.parse(raw_sampling)
        except ValueError as error:
            raise ScenarioError(f"{source}: {error}") from None

    base_section = _require_mapping(data.get("base", {}), f"{source}: [base]")
    unknown = set(base_section) - {"pipeline"}
    if unknown:
        raise ScenarioError(
            f"{source}: unknown [base] subsection(s) {sorted(unknown)}; expected [base.pipeline]"
        )
    base = _machine_spec(
        _require_mapping(base_section.get("pipeline", {}), f"{source}: [base.pipeline]"),
        f"{source}: [base.pipeline]",
    )

    axes_section = _require_mapping(data.get("axes", {}), f"{source}: [axes]")
    unknown = set(axes_section) - {"pipeline", "scheme"}
    if unknown:
        raise ScenarioError(
            f"{source}: unknown [axes] subsection(s) {sorted(unknown)}; "
            "expected [axes.pipeline] and/or [axes.scheme]"
        )
    axes: List[Axis] = []
    pipeline_axes = _require_mapping(
        axes_section.get("pipeline", {}), f"{source}: [axes.pipeline]"
    )
    for axis_name, raw in pipeline_axes.items():
        axes.append(_parse_pipeline_axis(axis_name, raw))
    scheme_axes = _require_mapping(
        axes_section.get("scheme", {}), f"{source}: [axes.scheme]"
    )
    for axis_name, raw in scheme_axes.items():
        axes.append(_parse_scheme_axis(axis_name, raw, schemes))
    if not axes:
        raise ScenarioError(f"{source}: a scenario needs at least one [axes] entry")
    # Axis names key result grouping in the report (`(name, display) in
    # point.coordinates`), so a pipeline axis and a scheme axis sharing a
    # name would silently pool each other's cells into both tables.
    names = [axis.name for axis in axes]
    duplicated = sorted({axis_name for axis_name in names if names.count(axis_name) > 1})
    if duplicated:
        raise ScenarioError(
            f"{source}: axis name(s) {duplicated} used by more than one axis"
        )

    # Overlapping override sources would be silently shadowed (dict-merge
    # order decides the winner), turning an axis into a no-op and its
    # sensitivity table into fiction — reject both ambiguities instead:
    # a base override of a swept field, and two axes sweeping one field.
    claimed: Dict[str, str] = {}
    for axis in axes:
        if axis.kind != "pipeline":
            continue
        fields = {override for position in axis.values for override in position}
        for field_name in sorted(fields):
            if field_name in claimed:
                raise ScenarioError(
                    f"{source}: field {field_name!r} is swept by both axis "
                    f"{claimed[field_name]!r} and axis {axis.name!r}"
                )
            claimed[field_name] = axis.name
        shadowed = sorted(fields & set(base.overrides()))
        if shadowed:
            raise ScenarioError(
                f"{source}: field(s) {shadowed} appear in both [base.pipeline] and an axis"
            )

    return Scenario(
        name=name,
        title=str(header.get("title", "")),
        description=str(header.get("description", "")),
        benchmarks=benchmarks,
        flavour=flavour,
        instructions=instructions,
        schemes=schemes,
        sampling=sampling,
        base=base,
        axes=tuple(axes),
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _decode(text: str, path: str) -> Mapping[str, Any]:
    if path.endswith(".json"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"{path}: invalid JSON: {error}") from None
    if path.endswith(".toml"):
        if tomllib is None:
            raise ScenarioError(
                f"{path}: TOML scenarios need Python >= 3.11 (tomllib); "
                "use a .json scenario on this interpreter"
            )
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ScenarioError(f"{path}: invalid TOML: {error}") from None
    raise ScenarioError(f"{path}: unsupported scenario extension (expected .toml or .json)")


def load_scenario_file(path: str) -> Scenario:
    """Parse one scenario file (``.toml`` or ``.json``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ScenarioError(f"cannot read scenario file {path}: {error}") from None
    return parse_scenario(_decode(text, path), source=os.path.basename(path))


def builtin_scenario_names() -> List[str]:
    """Names of the scenarios shipped with the package, sorted."""
    names = []
    for entry in os.listdir(_BUILTIN_DIR):
        stem, extension = os.path.splitext(entry)
        if extension in (".toml", ".json"):
            names.append(stem)
    return sorted(names)


def load_scenario(name_or_path: str) -> Scenario:
    """Resolve a built-in scenario name or a scenario file path.

    A known built-in name (``rob-scaling``, ``fetch-width``, …) loads the
    shipped file; anything containing a path separator or an extension is
    treated as a user scenario file.
    """
    if os.sep in name_or_path or name_or_path.endswith((".toml", ".json")):
        return load_scenario_file(name_or_path)
    for extension in (".toml", ".json"):
        path = os.path.join(_BUILTIN_DIR, name_or_path + extension)
        if os.path.exists(path):
            return load_scenario_file(path)
    raise ScenarioError(
        f"unknown scenario {name_or_path!r}; built-in scenarios: "
        f"{', '.join(builtin_scenario_names())} (or pass a .toml/.json path)"
    )


def overridable_parameters() -> Dict[str, int]:
    """Machine parameters a scenario may override → their Table 1 defaults
    (re-exported for the CLI's ``sweep --list`` output)."""
    return overridable_fields()
