"""Sensitivity reports: tables and ASCII plots over a finished sweep.

For every swept axis the report shows, per scheme, how the two headline
metrics respond as the axis moves through its values.  Each table cell
pools *every* simulation sharing that axis value — all benchmarks and, in
a multi-axis scenario, all positions of the other axes — and aggregates:

* **IPC** — geometric mean over the pooled cells (the standard
  aggregation for rates);
* **branch misprediction rate** — arithmetic mean over the pooled cells.

Each table is followed by one ASCII bar plot per scheme, so a terminal (or
the committed ``results/sweep_*.txt``) shows the shape of the sensitivity
curve at a glance.
"""

from __future__ import annotations

from math import exp, log
from typing import Dict, List, Sequence, Tuple

from repro.sweep.runner import SweepRun
from repro.sweep.scenario import Axis

#: Width, in characters, of the widest ASCII bar.
_BAR_WIDTH = 40


def _geomean(values: Sequence[float]) -> float:
    positive = [value for value in values if value > 0]
    if not positive:
        return 0.0
    return exp(sum(log(value) for value in positive) / len(positive))


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def ascii_bars(rows: Sequence[Tuple[str, float]], unit: str = "") -> List[str]:
    """Render ``(label, value)`` rows as a horizontal ASCII bar chart."""
    if not rows:
        return []
    peak = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        length = round(_BAR_WIDTH * value / peak) if peak > 0 else 0
        bar = "#" * max(length, 1 if value > 0 else 0)
        lines.append(f"  {label:>{label_width}s} | {bar} {value:.3f}{unit}")
    return lines


def _axis_metrics(
    run: SweepRun, axis: Axis
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Per scheme, per axis display value: (IPC geomean, mispredict %),
    pooled over benchmarks and any other axes' positions."""
    metrics: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for scheme in run.schemes():
        per_value: Dict[str, Tuple[float, float]] = {}
        for display in axis.display:
            ipcs: List[float] = []
            rates: List[float] = []
            for (result_scheme, point, _benchmark), result in run.results.items():
                if result_scheme != scheme:
                    continue
                if (axis.name, display) not in point.coordinates:
                    continue
                ipcs.append(result.metrics.ipc)
                rates.append(result.accuracy.misprediction_rate)
            per_value[display] = (_geomean(ipcs), 100.0 * _mean(rates))
        metrics[scheme] = per_value
    return metrics


def _axis_section(run: SweepRun, axis: Axis) -> List[str]:
    metrics = _axis_metrics(run, axis)
    schemes = list(run.schemes())
    value_width = max([len(axis.name)] + [len(d) for d in axis.display])
    scheme_width = max(12, max(len(s) for s in schemes) + 2)

    lines = [f"axis: {axis.name}" + (" (scheme option)" if axis.kind == "scheme" else "")]
    benchmarks = ",".join(run.spec.benchmarks())

    header = f"  {axis.name:>{value_width}s}" + "".join(
        f" {scheme:>{scheme_width}s}" for scheme in schemes
    )
    lines += ["", f"  IPC (geomean over {benchmarks})", header, "  " + "-" * (len(header) - 2)]
    for display in axis.display:
        row = f"  {display:>{value_width}s}"
        for scheme in schemes:
            row += f" {metrics[scheme][display][0]:>{scheme_width}.3f}"
        lines.append(row)

    lines += ["", "  branch misprediction rate [%]", header, "  " + "-" * (len(header) - 2)]
    for display in axis.display:
        row = f"  {display:>{value_width}s}"
        for scheme in schemes:
            row += f" {metrics[scheme][display][1]:>{scheme_width}.2f}"
        lines.append(row)

    for scheme in schemes:
        lines += ["", f"  IPC vs {axis.name} — {scheme}"]
        lines += [
            "  " + line
            for line in ascii_bars(
                [(display, metrics[scheme][display][0]) for display in axis.display]
            )
        ]
    return lines


def render_sweep(run: SweepRun) -> str:
    """Render a finished sweep as the full sensitivity report."""
    scenario = run.scenario
    lines = [
        f"sweep: {scenario.name}"
        + (f" — {scenario.title}" if scenario.title else ""),
    ]
    if scenario.description:
        lines.append(scenario.description)
    lines += [
        "",
        f"flavour         {scenario.flavour}",
        f"benchmarks      {', '.join(run.spec.benchmarks())}",
        f"instructions    {scenario.instructions} per benchmark",
        f"schemes         {', '.join(scenario.schemes)}",
        f"base machine    {scenario.base.describe()}",
        f"grid            {len(run.spec.points())} points x "
        f"{len(scenario.schemes)} schemes x {len(run.spec.benchmarks())} benchmarks "
        f"= {run.spec.cell_count()} simulations",
    ]
    if scenario.sampling is not None:
        lines.append(
            f"sampling        SAMPLED — {scenario.sampling.describe()}; "
            "all numbers below are approximations of a full simulation"
        )
    for axis in scenario.axes:
        lines.append("")
        lines.extend(_axis_section(run, axis))
    lines += ["", f"engine: {run.stats.render()}"]
    return "\n".join(lines)
