"""Run a sweep through the job-graph engine and collect per-point results.

The runner is deliberately thin: :func:`run_sweep` expands the scenario
(:class:`~repro.sweep.spec.SweepSpec`), hands the resulting cell requests
to the unified :func:`repro.engine.run.run_cells` entrypoint — whose
:class:`~repro.engine.ExecutionEngine` deduplicates builds and
traces across points (all points of one benchmark/flavour share one trace:
the functional emulation does not depend on the timing machine), runs cells
in parallel under ``--jobs N`` and serves every previously-computed result
from the artifact store — and reassembles the engine's output table into
the per-(scheme, point, benchmark) mapping the report layer renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.api import EngineStats, ExecutionEngine, run_cells
from repro.experiments.setup import ExperimentProfile
from repro.pipeline.core import SimulationResult
from repro.sweep.scenario import Scenario, load_scenario
from repro.sweep.spec import SweepPoint, SweepSpec


@dataclass
class SweepRun:
    """Everything one sweep produced."""

    scenario: Scenario
    spec: SweepSpec
    #: (scheme kind, point, benchmark) → simulation result.
    results: Dict[Tuple[str, SweepPoint, str], SimulationResult] = field(
        default_factory=dict
    )
    stats: EngineStats = field(default_factory=EngineStats)

    def schemes(self) -> Tuple[str, ...]:
        return self.spec.scenario.schemes


def sweep_profile(scenario: Scenario) -> ExperimentProfile:
    """The engine profile a scenario implies (budget + benchmark subset)."""
    spec = SweepSpec(scenario)
    return ExperimentProfile(
        name=f"sweep:{scenario.name}",
        instructions_per_benchmark=scenario.instructions,
        benchmarks=spec.benchmarks(),
        profile_budget=min(scenario.instructions, 20_000),
    )


def run_sweep(
    scenario,
    engine: Optional[ExecutionEngine] = None,
    jobs: Optional[int] = None,
) -> SweepRun:
    """Run ``scenario`` (a :class:`Scenario`, builtin name, or file path).

    ``engine`` may be supplied to share caches with other work, but must be
    built for the scenario's instruction budget (use :func:`sweep_profile`):
    trace jobs are planned at the *engine profile's* budget, so a mismatch
    would silently simulate a different budget than the report claims.
    ``jobs`` overrides the engine's worker-process count.
    """
    if not isinstance(scenario, Scenario):
        scenario = load_scenario(scenario)
    spec = SweepSpec(scenario)
    expected = sweep_profile(scenario)
    if engine is None:
        engine = ExecutionEngine(profile=expected)
    else:
        # Both budgets matter: the instruction budget keys the traces, and
        # the profiling budget feeds the if-conversion decisions (and the
        # binary fingerprint) — a mismatch on either would silently
        # simulate something other than what the report claims.
        actual = (
            engine.profile.instructions_per_benchmark,
            engine.profile.profile_budget,
        )
        if actual != (expected.instructions_per_benchmark, expected.profile_budget):
            raise ValueError(
                f"engine profile (instructions={actual[0]}, profile_budget={actual[1]}) "
                f"does not match scenario {scenario.name!r} "
                f"(instructions={expected.instructions_per_benchmark}, "
                f"profile_budget={expected.profile_budget}); build the engine "
                "with sweep_profile(scenario)"
            )
    definition = spec.definition()
    outcome = run_cells(
        definition.requests, name=definition.name, engine=engine, jobs=jobs
    )
    outputs = outcome.results
    run = SweepRun(scenario=scenario, spec=spec, stats=outcome.stats)
    by_label = {
        label: (scheme, point) for (scheme, label), point in spec.labels().items()
    }
    for (benchmark, label), result in outputs.items():
        scheme, point = by_label[label]
        run.results[(scheme, point, benchmark)] = result
    return run
