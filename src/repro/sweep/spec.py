"""Grid expansion: a scenario → sweep points → one engine definition.

A :class:`SweepPoint` is one position of the scenario's cartesian grid —
the merged machine overrides of every pipeline axis plus the merged factory
options of every scheme axis.  :class:`SweepSpec` expands a scenario into
its points and renders them as one
:class:`~repro.engine.planner.ExperimentDefinition` whose cell-request
labels encode (scheme, point), which is how per-point results are collected
back out of the engine's output table after a (deduplicated, possibly
parallel, artifact-cached) run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

from repro.engine.jobs import SchemeSpec
from repro.engine.planner import CellRequest, ExperimentDefinition
from repro.pipeline.machine import MachineSpec
from repro.sweep.scenario import Scenario


@dataclass(frozen=True)
class SweepPoint:
    """One grid position: per-axis coordinates plus their merged effect."""

    #: (axis name, display value) in scenario axis order — the point's
    #: coordinates, used for report grouping and labels.
    coordinates: Tuple[Tuple[str, str], ...]
    #: The simulated machine at this point (scenario base + pipeline axes).
    machine: MachineSpec
    #: Scheme-factory options contributed by scheme axes, sorted.
    scheme_options: Tuple[Tuple[str, object], ...]

    def describe(self) -> str:
        if not self.coordinates:
            return "default"
        return ",".join(f"{name}={value}" for name, value in self.coordinates)


def _point_label(scheme: str, point: SweepPoint) -> str:
    """The engine-facing label of one (scheme, point) cell request."""
    return f"{scheme}@{point.describe()}"


@dataclass(frozen=True)
class SweepSpec:
    """The expanded form of a scenario: points, labels, and the definition."""

    scenario: Scenario

    # ------------------------------------------------------------------
    def points(self) -> List[SweepPoint]:
        """The cartesian grid of every axis, in scenario axis order.

        Memoised on the (frozen) spec: expanding a position materialises a
        validated :class:`MachineSpec`, which is worth doing once per grid,
        not once per caller."""
        return list(self._points)

    @cached_property
    def _points(self) -> Tuple[SweepPoint, ...]:
        axes = self.scenario.axes
        grid: List[SweepPoint] = []
        for positions in itertools.product(*(range(len(axis.values)) for axis in axes)):
            coordinates: List[Tuple[str, str]] = []
            machine_overrides: Dict[str, int] = dict(self.scenario.base.overrides())
            scheme_options: Dict[str, object] = {}
            for axis, position in zip(axes, positions):
                coordinates.append((axis.name, axis.display[position]))
                if axis.kind == "pipeline":
                    machine_overrides.update(axis.values[position])
                else:
                    scheme_options.update(axis.values[position])
            grid.append(
                SweepPoint(
                    coordinates=tuple(coordinates),
                    machine=MachineSpec.make(**machine_overrides),
                    scheme_options=tuple(sorted(scheme_options.items())),
                )
            )
        return tuple(grid)

    # ------------------------------------------------------------------
    def benchmarks(self) -> List[str]:
        """The scenario's benchmarks (default: the test-suite trio).

        A sweep multiplies every axis value by every benchmark and scheme,
        so the default is deliberately the three fast-compiling programs
        the FAST profile uses rather than the whole 22-program suite.
        """
        return list(self._benchmarks)

    @cached_property
    def _benchmarks(self) -> Tuple[str, ...]:
        if self.scenario.benchmarks:
            return tuple(self.scenario.benchmarks)
        from repro.experiments.setup import FAST_PROFILE

        return tuple(FAST_PROFILE.benchmarks or [])

    def scheme_spec(self, scheme: str, point: SweepPoint) -> SchemeSpec:
        """The spec of ``scheme`` at ``point``, with default-valued options
        normalized away — a Table 1 point (e.g. ``entries = 3634``) builds
        the *plain* scheme spec and therefore the same cache token, mirroring
        what :class:`~repro.pipeline.machine.MachineSpec` does for machine
        overrides.  Options the scheme's factory does not accept are dropped
        the same way: a scheme untouched by an axis (e.g. ``pep-pa`` on a
        ``second_level`` sweep) contributes one cached simulation per point
        instead of an error or a spurious re-run."""
        import inspect

        from repro.experiments.setup import scheme_factory, scheme_option_defaults

        accepted = inspect.signature(scheme_factory(scheme)).parameters
        defaults = scheme_option_defaults(scheme)
        options = {
            name: value
            for name, value in point.scheme_options
            if name in accepted and (name not in defaults or defaults[name] != value)
        }
        return SchemeSpec.make(scheme, **options)

    def definition(self) -> ExperimentDefinition:
        """All (benchmark × point × scheme) cell requests, labelled."""
        points = self._points
        requests = [
            CellRequest(
                benchmark=benchmark,
                flavour=self.scenario.flavour,
                label=_point_label(scheme, point),
                scheme=self.scheme_spec(scheme, point),
                machine=point.machine,
                sampling=self.scenario.sampling,
            )
            for benchmark in self._benchmarks
            for point in points
            for scheme in self.scenario.schemes
        ]
        return ExperimentDefinition(name=f"sweep:{self.scenario.name}", requests=requests)

    def labels(self) -> Dict[Tuple[str, str], SweepPoint]:
        """(scheme, label) → point, for reassembling engine outputs."""
        return {
            (scheme, _point_label(scheme, point)): point
            for point in self._points
            for scheme in self.scenario.schemes
        }

    def cell_count(self) -> int:
        """Total simulations the grid requests (before deduplication)."""
        return len(self._benchmarks) * len(self._points) * len(self.scenario.schemes)
