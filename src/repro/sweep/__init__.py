"""Design-space exploration: declarative machine-configuration sweeps.

The paper evaluates one machine (Table 1).  This package turns the
reproduction into a sensitivity-analysis tool: a *scenario* file (TOML or
JSON) declares named machine configurations as overrides on the Table 1
:class:`~repro.pipeline.config.PipelineConfig` plus parameter axes to sweep
(ROB size, fetch width, misprediction penalty, predictor geometry …), a
:class:`~repro.sweep.spec.SweepSpec` expands the declared grid into engine
cell requests, and the existing job-graph engine runs them — deduplicated,
parallel (``--jobs N``) and artifact-cached, with every non-default machine
keyed by its own config token so sweep results can never collide with the
cached Table 1 artifacts.

Modules:

* :mod:`repro.sweep.scenario` — the scenario model, TOML/JSON parsing and
  validation, and the built-in scenario library (``rob-scaling``,
  ``fetch-width``, ``mispredict-penalty``, ``predictor-budget``);
* :mod:`repro.sweep.spec` — grid expansion: scenario → sweep points →
  one engine :class:`~repro.engine.planner.ExperimentDefinition`;
* :mod:`repro.sweep.runner` — runs a sweep through an
  :class:`~repro.engine.ExecutionEngine` and collects per-point results;
* :mod:`repro.sweep.report` — sensitivity tables and ASCII plots (IPC and
  branch accuracy vs. each swept axis, per scheme).

Entry point: ``repro sweep <scenario>`` (see :mod:`repro.cli`), which
renders the report and writes it under ``results/sweep_<name>.txt``.
"""

from repro.sweep.runner import SweepRun, run_sweep
from repro.sweep.scenario import (
    Scenario,
    ScenarioError,
    builtin_scenario_names,
    load_scenario,
)
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.report import render_sweep

__all__ = [
    "Scenario",
    "ScenarioError",
    "SweepPoint",
    "SweepSpec",
    "SweepRun",
    "builtin_scenario_names",
    "load_scenario",
    "render_sweep",
    "run_sweep",
]
