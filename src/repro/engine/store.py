"""Content-addressed on-disk artifact store.

The store persists the artifact kinds of the experiment job graph —
compiled binaries, dynamic traces, simulation results and mid-simulation
resume checkpoints — across processes,
keyed by the content hash of everything that determines them (profile,
workload, flavour, scheme configuration; see :mod:`repro.engine.planner`).
Running ``repro figure6`` after ``repro figure5`` therefore never recompiles
or re-traces a (benchmark, flavour) cell the first run already produced.

Layout (all artifacts live under a format-version directory so format bumps
invalidate everything at once)::

    <root>/v1/binaries/<key>.pkl   + <key>.json   (metadata sidecar)
    <root>/v1/traces/<key>.pkl    + <key>.json
    <root>/v1/results/<key>.pkl   + <key>.json

Writes are atomic (unique temp file + ``os.replace``) so concurrent worker
processes can share one store.

**Integrity.** Every ``put`` records a SHA-256 digest of the encoded
payload in the metadata sidecar, and every ``get`` verifies it before
decoding — so at-rest corruption (bit flips, torn writes) is *detected*,
not just decode failures.  Damaged artifacts are **quarantined** (moved to
``<root>/v1/quarantine/``, surfaced by :meth:`ArtifactStore.usage` and the
``repro cache stats`` CLI) rather than silently deleted, and the ``get``
reports a miss so the caller transparently regenerates the artifact.
Orphaned ``.json`` sidecars — left when a crash interrupts a remove
between the payload unlink and the sidecar unlink — are swept by
:meth:`ArtifactStore.ensure_root`.

For long-running multi-tenant use (the ``repro serve`` daemon) the store
also supports **size-gated LRU eviction**: every cache hit touches the
payload's mtime (the artifact's *last hit*), and :meth:`ArtifactStore.evict`
removes least-recently-hit artifacts — oldest hit first, protected keys
skipped — until total payload bytes fit under a byte budget.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import uuid
from typing import Any, Callable, Collection, Dict, List, Optional, Tuple

from repro import faults
from repro.emulator.trace import deserialize_trace, serialize_trace
from repro.emulator.tracepack import PackBackendUnavailable
from repro.log import get_logger

_log = get_logger(__name__)

#: Bump to invalidate every previously stored artifact.
STORE_FORMAT_VERSION = 1

#: Artifact kinds, in build order.  Checkpoints are mid-simulation resume
#: snapshots (windowed runs; see :mod:`repro.pipeline.windowed`) — transient
#: by design: the engine discards a job's checkpoint once its result lands.
BINARIES = "binaries"
TRACES = "traces"
RESULTS = "results"
CHECKPOINTS = "checkpoints"
KINDS = (BINARIES, TRACES, RESULTS, CHECKPOINTS)

#: Default store location (overridable via this environment variable).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir(explicit: Optional[str] = None) -> str:
    """Resolve the cache directory: explicit arg > env var > default."""
    return explicit or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def _pickle_dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


#: Per-kind (encode, decode) codecs.  Traces use the versioned encoding from
#: the emulator layer — compressed columnar packs in format 2, with format-1
#: object pickles still readable and still written by the ``REPRO_OPT=0``
#: reference path; binaries and results are plain pickles.
_CODECS: Dict[str, Tuple[Callable[[Any], bytes], Callable[[bytes], Any]]] = {
    BINARIES: (_pickle_dumps, pickle.loads),
    TRACES: (serialize_trace, deserialize_trace),
    RESULTS: (_pickle_dumps, pickle.loads),
    CHECKPOINTS: (_pickle_dumps, pickle.loads),
}


class ArtifactStore:
    """A content-addressed store rooted at one directory."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = default_cache_dir(root)

    # ------------------------------------------------------------------
    def ensure_root(self) -> Optional[str]:
        """Create the store's format-version directory if it is missing.

        Inspection commands (``repro cache stats``/``path``) call this so a
        store pointed at a directory that does not exist yet is lazily
        created and reported as empty instead of erroring.  Returns the
        created directory, or ``None`` when creation failed (e.g. the
        configured root is not a writable directory) — in that case the
        store still behaves as empty.

        Also sweeps **orphaned sidecars**: a remove that crashed between
        the payload unlink and the sidecar unlink leaves a ``.json`` with
        no ``.pkl``, which would skew :meth:`entries`-based reporting
        forever.  ``put`` writes the payload before the sidecar, so a
        sidecar without a payload is always stale — never a write in
        flight.
        """
        base = os.path.join(self.root, f"v{STORE_FORMAT_VERSION}")
        try:
            os.makedirs(base, exist_ok=True)
        except OSError:
            return None
        self._sweep_orphan_sidecars()
        return base

    def _sweep_orphan_sidecars(self) -> int:
        """Remove ``.json`` sidecars whose payload is gone; return count."""
        removed = 0
        for kind in KINDS:
            directory = self._kind_dir(kind)
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            present = set(names)
            for name in names:
                if not name.endswith(".json"):
                    continue
                if f"{name[: -len('.json')]}.pkl" in present:
                    continue
                try:
                    os.remove(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
        if removed:
            _log.info("swept %d orphaned metadata sidecar(s) under %s", removed, self.root)
        return removed

    def _kind_dir(self, kind: str) -> str:
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; expected {KINDS}")
        return os.path.join(self.root, f"v{STORE_FORMAT_VERSION}", kind)

    def path(self, kind: str, key: str) -> str:
        """Path of the artifact payload for ``key`` (may not exist)."""
        return os.path.join(self._kind_dir(kind), f"{key}.pkl")

    def _meta_path(self, kind: str, key: str) -> str:
        return os.path.join(self._kind_dir(kind), f"{key}.json")

    # ------------------------------------------------------------------
    def contains(self, kind: str, key: str) -> bool:
        """True when an artifact of ``kind`` is stored under ``key``."""
        return os.path.exists(self.path(kind, key))

    def get(self, kind: str, key: str) -> Optional[Any]:
        """Load one artifact, or ``None`` on a miss.

        The payload's SHA-256 digest is verified against the metadata
        sidecar (when one recorded it) *before* decoding, so silent at-rest
        corruption — a bit flip that still unpickles — is caught, not just
        decode failures.  Damaged artifacts are quarantined (moved under
        ``<root>/v1/quarantine/``, never silently deleted) and reported as
        misses, so the caller transparently regenerates them while the
        evidence stays inspectable.
        """
        path = self.path(kind, key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        recorded = self._recorded_digest(kind, key)
        if recorded is not None and hashlib.sha256(data).hexdigest() != recorded:
            self._quarantine(kind, key, "payload digest mismatch")
            return None
        try:
            obj = _CODECS[kind][1](data)
        except PackBackendUnavailable:
            # A columnar trace read in an environment without numpy: the
            # artifact is valid, this process just cannot decode it.  Report
            # a miss but leave it for numpy-enabled processes.
            return None
        except Exception as error:
            self._quarantine(kind, key, f"decode failed: {type(error).__name__}")
            return None
        # Record the hit: payload mtime is the artifact's last-hit time,
        # which is what size-gated eviction orders by (LRU).
        try:
            os.utime(path, None)
        except OSError:
            pass
        return obj

    def put(
        self, kind: str, key: str, obj: Any, metadata: Optional[Dict[str, Any]] = None
    ) -> str:
        """Store one artifact atomically and return its payload path.

        The metadata sidecar records a SHA-256 digest of the encoded
        payload; :meth:`get` verifies it on every load.
        """
        directory = self._kind_dir(kind)
        os.makedirs(directory, exist_ok=True)
        data = _CODECS[kind][0](obj)
        path = self.path(kind, key)
        self._atomic_write(directory, path, data)
        meta = dict(metadata or {})
        meta.update(
            kind=kind,
            key=key,
            size_bytes=len(data),
            created=time.time(),
            sha256=hashlib.sha256(data).hexdigest(),
        )
        self._atomic_write(
            directory,
            self._meta_path(kind, key),
            json.dumps(meta, sort_keys=True).encode("utf-8"),
        )
        # Chaos-testing hook: corrupt-artifact-bytes / truncate-payload
        # damage the payload *after* the true digest was recorded, exactly
        # like post-write bit rot (no-op unless REPRO_FAULTS enables them).
        faults.corrupt_payload(path)
        return path

    def _recorded_digest(self, kind: str, key: str) -> Optional[str]:
        """The sidecar's payload digest, or ``None`` when not recorded."""
        try:
            with open(self._meta_path(kind, key), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        digest = meta.get("sha256")
        return digest if isinstance(digest, str) else None

    @staticmethod
    def _atomic_write(directory: str, path: str, data: bytes) -> None:
        tmp = os.path.join(directory, f".tmp-{uuid.uuid4().hex}")
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def _remove(self, kind: str, key: str) -> None:
        for path in (self.path(kind, key), self._meta_path(kind, key)):
            try:
                os.remove(path)
            except OSError:
                pass

    def discard(self, kind: str, key: str) -> None:
        """Remove one artifact (payload + sidecar); a no-op when absent.

        The engine uses this to drop a job's resume checkpoint once the
        finished result is stored — a checkpoint that outlived its run
        would only waste eviction budget.
        """
        self._remove(kind, key)

    # ------------------------------------------------------------------
    # Streaming writes (scratch file → adopt)
    # ------------------------------------------------------------------
    def scratch_path(self, kind: str) -> str:
        """A unique scratch file path inside one kind's directory.

        Streaming producers (chunked trace collection) write their payload
        incrementally to this path, then hand it over with
        :meth:`put_file` — same filesystem, so adoption is one atomic
        rename, never a copy.  The ``.tmp-`` prefix keeps half-written
        files invisible to every store scan.
        """
        directory = self._kind_dir(kind)
        os.makedirs(directory, exist_ok=True)
        return os.path.join(directory, f".tmp-{uuid.uuid4().hex}")

    def put_file(
        self, kind: str, key: str, path: str, metadata: Optional[Dict[str, Any]] = None
    ) -> str:
        """Adopt an already-encoded payload file as the artifact for ``key``.

        ``path`` must hold bytes the kind's codec decodes (for traces: the
        versioned trace encoding, e.g. an RTP3 chunk stream written by
        :class:`~repro.emulator.tracepack.ChunkedPackWriter`).  The file is
        renamed into place — the streaming counterpart of :meth:`put`, with
        the same digest-recording sidecar and integrity guarantees, without
        ever holding the payload in memory.
        """
        directory = self._kind_dir(kind)
        os.makedirs(directory, exist_ok=True)
        digest = hashlib.sha256()
        size = 0
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
                size += len(block)
        target = self.path(kind, key)
        os.replace(path, target)
        meta = dict(metadata or {})
        meta.update(
            kind=kind,
            key=key,
            size_bytes=size,
            created=time.time(),
            sha256=digest.hexdigest(),
        )
        self._atomic_write(
            directory,
            self._meta_path(kind, key),
            json.dumps(meta, sort_keys=True).encode("utf-8"),
        )
        faults.corrupt_payload(target)
        return target

    # ------------------------------------------------------------------
    # Quarantine (damaged artifacts; see get())
    # ------------------------------------------------------------------
    def quarantine_dir(self) -> str:
        """Directory holding quarantined (damaged) artifacts."""
        return os.path.join(self.root, f"v{STORE_FORMAT_VERSION}", "quarantine")

    def _quarantine(self, kind: str, key: str, reason: str) -> None:
        """Move a damaged artifact (payload + sidecar) into quarantine.

        The sidecar is rewritten with the quarantine ``reason`` and
        timestamp so a post-mortem knows what failed and when.  Filenames
        are ``<kind>__<key>.*`` — kinds share one directory, and a repeat
        quarantine of the same key overwrites the previous evidence.
        """
        directory = self.quarantine_dir()
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError:
            self._remove(kind, key)
            return
        _log.warning("quarantining %s/%s: %s", kind, key, reason)
        payload = self.path(kind, key)
        sidecar = self._meta_path(kind, key)
        try:
            os.replace(payload, os.path.join(directory, f"{kind}__{key}.pkl"))
        except OSError:
            pass
        meta: Dict[str, Any] = {}
        try:
            with open(sidecar, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                meta = loaded
        except (OSError, ValueError):
            pass
        meta.update(
            kind=kind,
            key=key,
            quarantine_reason=reason,
            quarantined=time.time(),
        )
        self._atomic_write(
            directory,
            os.path.join(directory, f"{kind}__{key}.json"),
            json.dumps(meta, sort_keys=True).encode("utf-8"),
        )
        try:
            os.remove(sidecar)
        except OSError:
            pass

    def quarantine_usage(self) -> Dict[str, int]:
        """Quarantined artifact count and payload bytes."""
        count = 0
        size = 0
        try:
            names = os.listdir(self.quarantine_dir())
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            count += 1
            try:
                size += os.path.getsize(os.path.join(self.quarantine_dir(), name))
            except OSError:
                pass
        return {"count": count, "bytes": size}

    def quarantine_entries(self) -> List[Dict[str, Any]]:
        """Metadata of every quarantined artifact (reason, timestamps)."""
        directory = self.quarantine_dir()
        found: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return found
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
                    found.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return found

    def clear_quarantine(self) -> int:
        """Delete all quarantined artifacts; return payload count removed."""
        directory = self.quarantine_dir()
        try:
            names = os.listdir(directory)
        except OSError:
            return 0
        removed = 0
        for name in names:
            if name.endswith(".pkl"):
                removed += 1
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Inspection (the ``repro cache`` CLI)
    # ------------------------------------------------------------------
    def entries(self, kind: str) -> List[Dict[str, Any]]:
        """Metadata of every stored artifact of one kind."""
        directory = self._kind_dir(kind)
        found: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return found
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
                    found.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return found

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind artifact counts and payload sizes.

        A store root that does not exist yet is created lazily and reported
        as zero entries of every kind.
        """
        self.ensure_root()
        report: Dict[str, Dict[str, int]] = {}
        for kind in KINDS:
            directory = self._kind_dir(kind)
            count = 0
            size = 0
            try:
                names = os.listdir(directory)
            except OSError:
                names = []
            for name in names:
                if name.endswith(".pkl"):
                    count += 1
                    try:
                        size += os.path.getsize(os.path.join(directory, name))
                    except OSError:
                        pass
            report[kind] = {"count": count, "bytes": size}
        return report

    def usage(self) -> Dict[str, Dict[str, Any]]:
        """Per-kind entry counts, payload bytes and last-hit timestamps.

        A superset of :meth:`stats` for operational callers (the ``repro
        cache stats`` CLI and the serve daemon's ``GET /v1/store/stats``):
        each kind additionally reports ``oldest_hit``/``newest_hit`` (epoch
        seconds of the least/most recently hit payload, ``None`` when the
        kind is empty), and a ``total`` pseudo-kind aggregates counts and
        bytes across kinds — the number eviction gates on.  A ``quarantine``
        pseudo-kind reports damaged artifacts set aside by :meth:`get`;
        those bytes are *not* part of ``total`` (they are never evicted or
        served, only inspected and cleared).
        """
        self.ensure_root()
        report: Dict[str, Dict[str, Any]] = {}
        total_count = 0
        total_bytes = 0
        for kind in KINDS:
            count = 0
            size = 0
            oldest: Optional[float] = None
            newest: Optional[float] = None
            for _, st in self._payloads(kind):
                count += 1
                size += st.st_size
                oldest = st.st_mtime if oldest is None else min(oldest, st.st_mtime)
                newest = st.st_mtime if newest is None else max(newest, st.st_mtime)
            total_count += count
            total_bytes += size
            report[kind] = {
                "count": count,
                "bytes": size,
                "oldest_hit": oldest,
                "newest_hit": newest,
            }
        report["total"] = {"count": total_count, "bytes": total_bytes}
        report["quarantine"] = dict(self.quarantine_usage())
        return report

    def _payloads(self, kind: str):
        """Yield ``(key, os.stat result)`` of every payload of one kind."""
        directory = self._kind_dir(kind)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return
        for name in names:
            if not name.endswith(".pkl"):
                continue
            try:
                st = os.stat(os.path.join(directory, name))
            except OSError:
                continue
            yield name[: -len(".pkl")], st

    def evict(
        self, max_bytes: int, protect: Collection[str] = ()
    ) -> Dict[str, int]:
        """Remove least-recently-hit artifacts until payloads fit ``max_bytes``.

        Artifacts are ranked by last hit (payload mtime — refreshed by every
        :meth:`get` hit and by :meth:`put`) across *all* kinds, oldest first,
        and removed until total payload bytes drop to ``max_bytes`` or below.
        Keys in ``protect`` (e.g. artifacts of in-flight jobs) are never
        evicted.  Returns ``{"count": removed entries, "bytes": removed
        payload bytes}``.  Metadata sidecars go with their payloads; the
        scan is stat-based, so concurrent writers are safe (a racing
        re-``put`` simply re-creates the entry).
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries: List[Tuple[float, int, str, str]] = []
        total = 0
        for kind in KINDS:
            for key, st in self._payloads(kind):
                entries.append((st.st_mtime, st.st_size, kind, key))
                total += st.st_size
        removed = {"count": 0, "bytes": 0}
        if total <= max_bytes:
            return removed
        protected = set(protect)
        entries.sort()
        for _, size, kind, key in entries:
            if total <= max_bytes:
                break
            if key in protected:
                continue
            self._remove(kind, key)
            total -= size
            removed["count"] += 1
            removed["bytes"] += size
        return removed

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete stored artifacts (one kind, or everything); return count."""
        kinds = (kind,) if kind else KINDS
        removed = 0
        for one in kinds:
            directory = self._kind_dir(one)
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                path = os.path.join(directory, name)
                if name.endswith(".pkl"):
                    removed += 1
                try:
                    os.remove(path)
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"<ArtifactStore root={self.root!r}>"
