"""The unified run entrypoint: cell requests in, simulation results out.

Historically each consumer of the engine constructed its jobs slightly
differently — the figure experiments built :class:`ExperimentDefinition`
objects by hand, the sweep runner derived one from a scenario grid, and the
lane-batched path grouped simulate jobs itself.  :func:`run_cells` collapses
those call sites behind one signature: a sequence of
:class:`~repro.engine.planner.CellRequest` objects plus engine knobs
(store, worker processes, instruction budget), returning a
:class:`CellRunOutcome` with the per-label results and the engine's
accounting.  The sweep runner, the ``repro serve`` scheduler and the public
:mod:`repro.api` facade all run through it; lane-batching, deduplication,
multiprocessing and the artifact store keep working unchanged because the
engine underneath is the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.executor import EngineStats, ExecutionEngine, JobTiming
from repro.engine.planner import CellRequest, ExperimentDefinition
from repro.engine.store import ArtifactStore
from repro.pipeline.core import SimulationResult

#: Default fetched-instruction budget when neither ``engine``, ``profile``
#: nor ``instructions`` is given (matches the CLI default).
DEFAULT_INSTRUCTIONS = 20_000


@dataclass
class CellRunOutcome:
    """Everything one :func:`run_cells` call produced.

    ``results`` is keyed by ``(benchmark, label)`` exactly as requested —
    deduplicated cells fan back out, so every request has its entry.
    ``stats``/``timings`` are the engine's accounting for the whole call
    (cache hits included), and ``engine`` is the engine that ran it, so a
    follow-up call can share its in-memory caches.
    """

    results: Dict[Tuple[str, str], SimulationResult] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)
    timings: List[JobTiming] = field(default_factory=list)
    engine: Optional[ExecutionEngine] = None


def run_cells(
    requests: Sequence[CellRequest],
    *,
    name: str = "cells",
    engine: Optional[ExecutionEngine] = None,
    store: Optional[ArtifactStore] = None,
    jobs: Optional[int] = None,
    instructions: Optional[int] = None,
    profile_budget: Optional[int] = None,
    max_retries: Optional[int] = None,
    job_timeout: Optional[float] = None,
    checkpoint_every: Optional[int] = None,
    trace_segment_rows: Optional[int] = None,
) -> CellRunOutcome:
    """Run cell requests through the job-graph engine; return the outcome.

    Either pass ``engine`` (an :class:`ExecutionEngine` whose profile
    carries the instruction budget — ``store``/``instructions``/
    ``profile_budget``/``max_retries``/``job_timeout`` must then be
    omitted), or let this function build one: ``store`` (optional
    persistent artifact cache), ``jobs`` (worker processes),
    ``instructions`` (fetched-instruction budget per benchmark, default
    20 000), ``profile_budget`` (compiler profiling budget, default
    ``min(instructions, 20_000)``), ``max_retries`` (worker-failure retry
    rounds before serial fallback, default 2), ``job_timeout``
    (progress-watchdog seconds for parallel runs, default off),
    ``checkpoint_every`` (rows per windowed-simulation checkpoint — with a
    store, killed runs resume mid-trace; default off) and
    ``trace_segment_rows`` (rows per streamed trace segment — budgets above
    it collect traces chunked through the store, bounding peak memory;
    default off).

    The requests become one :class:`ExperimentDefinition` named ``name``;
    planning deduplicates shared builds/traces/simulations, the store
    serves anything already computed, and same-cell uncached jobs ride one
    lane-batched kernel launch where profitable.
    """
    requests = list(requests)
    if not requests:
        raise ValueError("run_cells needs at least one CellRequest")
    labels = [(request.benchmark, request.label) for request in requests]
    if len(set(labels)) != len(labels):
        duplicated = sorted({slot for slot in labels if labels.count(slot) > 1})
        raise ValueError(
            f"duplicate (benchmark, label) request(s) {duplicated}; labels "
            "key the result table, so every request needs a distinct one"
        )
    if engine is None:
        engine = _build_engine(
            requests,
            store,
            jobs,
            instructions,
            profile_budget,
            max_retries,
            job_timeout,
            checkpoint_every,
            trace_segment_rows,
        )
    elif any(
        option is not None
        for option in (
            store,
            instructions,
            profile_budget,
            max_retries,
            job_timeout,
            checkpoint_every,
            trace_segment_rows,
        )
    ):
        raise ValueError(
            "pass either engine= or the engine-construction options "
            "(store/instructions/profile_budget/max_retries/job_timeout/"
            "checkpoint_every/trace_segment_rows), not both"
        )
    definition = ExperimentDefinition(name=name, requests=requests)
    results = engine.run([definition], jobs=jobs)[definition.name]
    return CellRunOutcome(
        results=results,
        stats=engine.stats,
        timings=list(engine.job_timings),
        engine=engine,
    )


def _build_engine(
    requests: Sequence[CellRequest],
    store: Optional[ArtifactStore],
    jobs: Optional[int],
    instructions: Optional[int],
    profile_budget: Optional[int],
    max_retries: Optional[int] = None,
    job_timeout: Optional[float] = None,
    checkpoint_every: Optional[int] = None,
    trace_segment_rows: Optional[int] = None,
) -> ExecutionEngine:
    """An engine scoped to exactly the requested benchmarks and budget."""
    from repro.experiments.setup import ExperimentProfile

    instructions = DEFAULT_INSTRUCTIONS if instructions is None else int(instructions)
    if instructions < 1:
        raise ValueError(f"instructions must be a positive integer, got {instructions}")
    benchmarks: List[str] = []
    for request in requests:
        if request.benchmark not in benchmarks:
            benchmarks.append(request.benchmark)
    profile = ExperimentProfile(
        name="run-cells",
        instructions_per_benchmark=instructions,
        benchmarks=benchmarks,
        profile_budget=(
            min(instructions, 20_000) if profile_budget is None else int(profile_budget)
        ),
    )
    return ExecutionEngine(
        profile=profile,
        store=store,
        jobs=jobs or 1,
        max_retries=2 if max_retries is None else max_retries,
        job_timeout=job_timeout,
        checkpoint_every=checkpoint_every,
        trace_segment_rows=trace_segment_rows,
    )
