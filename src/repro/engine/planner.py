"""The planner: experiment definitions → a deduplicated job DAG.

An :class:`ExperimentDefinition` is the declarative form of one figure/table
sweep: an ordered list of (benchmark, flavour, column-label, scheme) cell
requests.  :func:`plan` expands any number of definitions into one
:class:`JobGraph` of build → trace → simulate jobs, deduplicated by content
key — so when Figure 6, both ablations and the IPC study all simulate the
same predicate scheme over the same if-converted trace, the graph contains
that compilation, that trace and that simulation exactly once, no matter how
many experiments asked for them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.binaries import BinaryFactory
from repro.emulator.trace import TRACE_FORMAT_VERSION
from repro.engine.hashing import code_fingerprint, stable_hash
from repro.engine.jobs import (
    FLAVOURS,
    BatchedSimulateJob,
    BuildJob,
    SchemeSpec,
    SimulateJob,
    TraceJob,
)
from repro.engine.store import STORE_FORMAT_VERSION
from repro.pipeline.machine import MachineSpec
from repro.pipeline.windowed import SamplingSpec


# ----------------------------------------------------------------------
# Definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellRequest:
    """One requested simulation: a cell plus the experiment-local label.

    ``machine`` selects the simulated machine configuration; the default is
    the paper's Table 1 machine, which is what every figure/table experiment
    uses.  Sweep scenarios (:mod:`repro.sweep`) request non-default specs.
    """

    benchmark: str
    flavour: str
    label: str
    scheme: SchemeSpec
    machine: MachineSpec = field(default_factory=MachineSpec)
    #: Sampled-simulation spec (``None`` = full simulation; see
    #: :class:`~repro.pipeline.windowed.SamplingSpec`).
    sampling: Optional[SamplingSpec] = None


@dataclass
class ExperimentDefinition:
    """A named, ordered collection of cell requests."""

    name: str
    requests: List[CellRequest] = field(default_factory=list)

    def benchmarks(self) -> List[str]:
        """Distinct benchmarks in request order."""
        seen: "OrderedDict[str, None]" = OrderedDict()
        for request in self.requests:
            seen.setdefault(request.benchmark, None)
        return list(seen)

    def labels(self) -> List[str]:
        """Distinct experiment-local column labels in request order."""
        seen: "OrderedDict[str, None]" = OrderedDict()
        for request in self.requests:
            seen.setdefault(request.label, None)
        return list(seen)


def sweep(
    name: str,
    benchmarks: Sequence[str],
    flavour: str,
    schemes: Mapping[str, SchemeSpec],
) -> ExperimentDefinition:
    """The common single-flavour sweep: benchmarks × labelled schemes."""
    if flavour not in FLAVOURS:
        raise ValueError(f"unknown binary flavour {flavour!r}; expected {FLAVOURS}")
    requests = [
        CellRequest(benchmark=b, flavour=flavour, label=label, scheme=spec)
        for b in benchmarks
        for label, spec in schemes.items()
    ]
    return ExperimentDefinition(name=name, requests=requests)


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------
@dataclass
class JobGraph:
    """A deduplicated DAG of build → trace → simulate jobs.

    ``outputs`` maps each experiment name to its (benchmark, label) →
    simulate-job-key table, which is how per-experiment results are
    reassembled after (possibly shared) execution.
    """

    builds: "OrderedDict[str, BuildJob]" = field(default_factory=OrderedDict)
    traces: "OrderedDict[str, TraceJob]" = field(default_factory=OrderedDict)
    simulations: "OrderedDict[str, SimulateJob]" = field(default_factory=OrderedDict)
    outputs: Dict[str, Dict[Tuple[str, str], str]] = field(default_factory=dict)

    def cells(self) -> "OrderedDict[Tuple[str, str], List[SimulateJob]]":
        """Simulation jobs grouped by (benchmark, flavour) cell.

        A cell is the executor's unit of scheduling: all of a cell's
        simulations replay the same trace, so they run in the same process
        and the trace is released once the whole cell is done.
        """
        grouped: "OrderedDict[Tuple[str, str], List[SimulateJob]]" = OrderedDict()
        for job in self.simulations.values():
            grouped.setdefault(job.cell, []).append(job)
        return grouped

    def job_counts(self) -> Dict[str, int]:
        """Deduplicated job totals per stage (builds/traces/simulations)."""
        return {
            "builds": len(self.builds),
            "traces": len(self.traces),
            "simulations": len(self.simulations),
        }

    def requested_simulations(self) -> int:
        """Total cell requests across definitions (before deduplication)."""
        return sum(len(table) for table in self.outputs.values())


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _artifact_key(*parts) -> str:
    """A cache key: the job's inputs salted with store format and code.

    :func:`~repro.engine.hashing.code_fingerprint` covers every source file
    of the package, so editing any layer of the simulator invalidates all
    previously stored artifacts — the store can never serve numbers that the
    current code would not reproduce.
    """
    return stable_hash(STORE_FORMAT_VERSION, code_fingerprint(), *parts)


def make_build_job(benchmark: str, flavour: str, factory: BinaryFactory) -> BuildJob:
    """The compile job of one (benchmark, flavour) cell, content-keyed by
    the factory's fingerprint (generator source, budgets, options)."""
    key = _artifact_key("binary", factory.fingerprint(benchmark, flavour))
    return BuildJob(
        key=key,
        benchmark=benchmark,
        flavour=flavour,
        profile_budget=factory.profile_budget,
    )


def make_trace_job(build: BuildJob, instructions: int) -> TraceJob:
    """The trace-collection job downstream of ``build`` at one instruction
    budget.  Machine configuration deliberately does **not** contribute to
    the key: the functional emulation is timing-independent, so every
    machine of a sweep shares one cached trace per cell."""
    # The trace encoding version is part of the key: bumping the format
    # invalidates stale cached traces at planning time instead of failing
    # (or silently re-decoding) at load time.  Simulate keys inherit it
    # through ``trace.key``.
    key = _artifact_key("trace", build.key, instructions, TRACE_FORMAT_VERSION)
    return TraceJob(
        key=key,
        benchmark=build.benchmark,
        flavour=build.flavour,
        instructions=instructions,
        build_key=build.key,
    )


def make_simulate_job(
    trace: TraceJob,
    scheme: SchemeSpec,
    machine: Optional[MachineSpec] = None,
    sampling: Optional[SamplingSpec] = None,
) -> SimulateJob:
    """The timing-simulation job replaying ``trace`` under ``scheme`` on
    ``machine`` (default: the Table 1 machine).  The key folds in the trace
    key, the scheme token and the machine's config token — plus, for sampled
    jobs only, the sampling spec: a full simulation's key is unchanged, and
    an approximate (sampled) result can never be served where an exact one
    was requested, or vice versa."""
    machine = machine if machine is not None else MachineSpec()
    parts = [
        "result",
        trace.key,
        scheme.token(),
        machine_fingerprint(machine),
    ]
    if sampling is not None:
        parts.append(sampling.token())
    key = _artifact_key(*parts)
    return SimulateJob(
        key=key,
        benchmark=trace.benchmark,
        flavour=trace.flavour,
        scheme=scheme,
        trace_key=trace.key,
        machine=machine,
        sampling=sampling,
    )


def make_batched_simulate_job(lanes: Sequence[SimulateJob]) -> BatchedSimulateJob:
    """Group same-cell simulate jobs into one lane-batched execution job.

    Every lane must replay the same trace (same benchmark, flavour and
    trace key); lanes differ in scheme and/or machine.  The batch key is
    derived from the lane keys purely for bookkeeping — it is **not** an
    artifact key: results are stored under each lane's own
    :class:`SimulateJob` key, so the store cannot tell a batched run from a
    per-cell one (and cached lanes are dropped from batches before launch).
    """
    if not lanes:
        raise ValueError("a batched simulate job needs at least one lane")
    first = lanes[0]
    for job in lanes[1:]:
        if job.cell != first.cell or job.trace_key != first.trace_key:
            raise ValueError(
                "batched lanes must share one (benchmark, flavour) trace; "
                f"got {first.cell} and {job.cell}"
            )
    key = stable_hash("batch", [job.key for job in lanes])
    return BatchedSimulateJob(
        key=key,
        benchmark=first.benchmark,
        flavour=first.flavour,
        lanes=tuple(lanes),
        trace_key=first.trace_key,
    )


@lru_cache(maxsize=None)
def machine_fingerprint(machine: MachineSpec = MachineSpec()) -> str:
    """The config token: a hash of the *effective* simulated machine.

    The spec's overrides are materialised into a full
    :class:`~repro.pipeline.config.PipelineConfig` and hashed together with
    the (currently fixed) :class:`~repro.memory.hierarchy.MemoryHierarchyConfig`,
    so the token changes iff an effective machine parameter changes:
    a :class:`MachineSpec` overriding a field to its Table 1 default hashes
    identically to the default spec (specs normalise such overrides away,
    and the materialised configs compare field-by-field anyway), which is
    what lets a Table 1 sweep cell reuse artifacts cached by the figure
    experiments.  Memoised per spec; specs are small frozen dataclasses.
    """
    from repro.memory.hierarchy import MemoryHierarchyConfig

    return stable_hash(
        {
            "pipeline": machine.build_config(),
            "memory": MemoryHierarchyConfig(),
        }
    )


def plan(
    definitions: Sequence[ExperimentDefinition],
    instructions: int,
    factory: BinaryFactory,
) -> JobGraph:
    """Expand ``definitions`` into one deduplicated :class:`JobGraph`."""
    graph = JobGraph()
    for definition in definitions:
        table: Dict[Tuple[str, str], str] = graph.outputs.setdefault(
            definition.name, {}
        )
        for request in definition.requests:
            build = make_build_job(request.benchmark, request.flavour, factory)
            graph.builds.setdefault(build.key, build)
            trace = make_trace_job(build, instructions)
            graph.traces.setdefault(trace.key, trace)
            simulate = make_simulate_job(
                trace, request.scheme, request.machine, request.sampling
            )
            graph.simulations.setdefault(simulate.key, simulate)
            table[(request.benchmark, request.label)] = simulate.key
    return graph
