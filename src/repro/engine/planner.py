"""The planner: experiment definitions → a deduplicated job DAG.

An :class:`ExperimentDefinition` is the declarative form of one figure/table
sweep: an ordered list of (benchmark, flavour, column-label, scheme) cell
requests.  :func:`plan` expands any number of definitions into one
:class:`JobGraph` of build → trace → simulate jobs, deduplicated by content
key — so when Figure 6, both ablations and the IPC study all simulate the
same predicate scheme over the same if-converted trace, the graph contains
that compilation, that trace and that simulation exactly once, no matter how
many experiments asked for them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.compiler.binaries import BinaryFactory
from repro.emulator.trace import TRACE_FORMAT_VERSION
from repro.engine.hashing import code_fingerprint, stable_hash
from repro.engine.jobs import (
    FLAVOURS,
    BuildJob,
    SchemeSpec,
    SimulateJob,
    TraceJob,
)
from repro.engine.store import STORE_FORMAT_VERSION


# ----------------------------------------------------------------------
# Definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellRequest:
    """One requested simulation: a cell plus the experiment-local label."""

    benchmark: str
    flavour: str
    label: str
    scheme: SchemeSpec


@dataclass
class ExperimentDefinition:
    """A named, ordered collection of cell requests."""

    name: str
    requests: List[CellRequest] = field(default_factory=list)

    def benchmarks(self) -> List[str]:
        seen: "OrderedDict[str, None]" = OrderedDict()
        for request in self.requests:
            seen.setdefault(request.benchmark, None)
        return list(seen)

    def labels(self) -> List[str]:
        seen: "OrderedDict[str, None]" = OrderedDict()
        for request in self.requests:
            seen.setdefault(request.label, None)
        return list(seen)


def sweep(
    name: str,
    benchmarks: Sequence[str],
    flavour: str,
    schemes: Mapping[str, SchemeSpec],
) -> ExperimentDefinition:
    """The common single-flavour sweep: benchmarks × labelled schemes."""
    if flavour not in FLAVOURS:
        raise ValueError(f"unknown binary flavour {flavour!r}; expected {FLAVOURS}")
    requests = [
        CellRequest(benchmark=b, flavour=flavour, label=label, scheme=spec)
        for b in benchmarks
        for label, spec in schemes.items()
    ]
    return ExperimentDefinition(name=name, requests=requests)


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------
@dataclass
class JobGraph:
    """A deduplicated DAG of build → trace → simulate jobs.

    ``outputs`` maps each experiment name to its (benchmark, label) →
    simulate-job-key table, which is how per-experiment results are
    reassembled after (possibly shared) execution.
    """

    builds: "OrderedDict[str, BuildJob]" = field(default_factory=OrderedDict)
    traces: "OrderedDict[str, TraceJob]" = field(default_factory=OrderedDict)
    simulations: "OrderedDict[str, SimulateJob]" = field(default_factory=OrderedDict)
    outputs: Dict[str, Dict[Tuple[str, str], str]] = field(default_factory=dict)

    def cells(self) -> "OrderedDict[Tuple[str, str], List[SimulateJob]]":
        """Simulation jobs grouped by (benchmark, flavour) cell.

        A cell is the executor's unit of scheduling: all of a cell's
        simulations replay the same trace, so they run in the same process
        and the trace is released once the whole cell is done.
        """
        grouped: "OrderedDict[Tuple[str, str], List[SimulateJob]]" = OrderedDict()
        for job in self.simulations.values():
            grouped.setdefault(job.cell, []).append(job)
        return grouped

    def job_counts(self) -> Dict[str, int]:
        return {
            "builds": len(self.builds),
            "traces": len(self.traces),
            "simulations": len(self.simulations),
        }

    def requested_simulations(self) -> int:
        """Total cell requests across definitions (before deduplication)."""
        return sum(len(table) for table in self.outputs.values())


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _artifact_key(*parts) -> str:
    """A cache key: the job's inputs salted with store format and code.

    :func:`~repro.engine.hashing.code_fingerprint` covers every source file
    of the package, so editing any layer of the simulator invalidates all
    previously stored artifacts — the store can never serve numbers that the
    current code would not reproduce.
    """
    return stable_hash(STORE_FORMAT_VERSION, code_fingerprint(), *parts)


def make_build_job(benchmark: str, flavour: str, factory: BinaryFactory) -> BuildJob:
    key = _artifact_key("binary", factory.fingerprint(benchmark, flavour))
    return BuildJob(
        key=key,
        benchmark=benchmark,
        flavour=flavour,
        profile_budget=factory.profile_budget,
    )


def make_trace_job(build: BuildJob, instructions: int) -> TraceJob:
    # The trace encoding version is part of the key: bumping the format
    # invalidates stale cached traces at planning time instead of failing
    # (or silently re-decoding) at load time.  Simulate keys inherit it
    # through ``trace.key``.
    key = _artifact_key("trace", build.key, instructions, TRACE_FORMAT_VERSION)
    return TraceJob(
        key=key,
        benchmark=build.benchmark,
        flavour=build.flavour,
        instructions=instructions,
        build_key=build.key,
    )


def make_simulate_job(trace: TraceJob, scheme: SchemeSpec) -> SimulateJob:
    key = _artifact_key(
        "result",
        trace.key,
        scheme.token(),
        _machine_fingerprint(),
    )
    return SimulateJob(
        key=key,
        benchmark=trace.benchmark,
        flavour=trace.flavour,
        scheme=scheme,
        trace_key=trace.key,
    )


@lru_cache(maxsize=1)
def _machine_fingerprint() -> str:
    """The simulated machine configuration a result depends on.

    Simulations are run with the default :class:`PipelineConfig` and
    :class:`MemoryHierarchyConfig`, so those defaults are folded into every
    result key (in addition to the package-wide code fingerprint).  Constant
    within a process, hence memoised.
    """
    from repro.memory.hierarchy import MemoryHierarchyConfig
    from repro.pipeline.config import PipelineConfig

    return stable_hash(
        {
            "pipeline": PipelineConfig(),
            "memory": MemoryHierarchyConfig(),
        }
    )


def plan(
    definitions: Sequence[ExperimentDefinition],
    instructions: int,
    factory: BinaryFactory,
) -> JobGraph:
    """Expand ``definitions`` into one deduplicated :class:`JobGraph`."""
    graph = JobGraph()
    for definition in definitions:
        table: Dict[Tuple[str, str], str] = graph.outputs.setdefault(
            definition.name, {}
        )
        for request in definition.requests:
            build = make_build_job(request.benchmark, request.flavour, factory)
            graph.builds.setdefault(build.key, build)
            trace = make_trace_job(build, instructions)
            graph.traces.setdefault(trace.key, trace)
            simulate = make_simulate_job(trace, request.scheme)
            graph.simulations.setdefault(simulate.key, simulate)
            table[(request.benchmark, request.label)] = simulate.key
    return graph
