"""Stable content hashing for cache keys.

Artifact-store keys must be identical across processes and interpreter
invocations, so they are derived from a *canonical* JSON rendering of the
job's inputs (``hash()`` is salted per-process and unusable here).  Anything
JSON cannot express directly — dataclasses, tuples, enums — is normalised
first; unknown objects fall back to ``repr`` which is stable for the
configuration dataclasses used throughout this code base.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from functools import lru_cache
from typing import Any


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serialisable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        items = {_key_string(key): canonicalize(value) for key, value in obj.items()}
        return dict(sorted(items.items()))
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_key_string(item) for item in obj)
    return repr(obj)


def _key_string(key: Any) -> str:
    """A deterministic string form of a mapping key or set member."""
    canonical = canonicalize(key)
    if isinstance(canonical, str):
        return canonical
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def stable_hash(*parts: Any) -> str:
    """Return a short hex digest uniquely identifying ``parts``."""
    payload = json.dumps(
        canonicalize(list(parts)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every source file in the ``repro`` package.

    Folded into all artifact cache keys: any edit to the simulator, the
    compiler, the workload generators — anything that could change what a
    job produces — changes the fingerprint and therefore misses the cache,
    so a persistent store can never serve results computed by old code.
    Deliberately conservative (the whole package, not a dependency slice):
    for a paper reproduction, an unnecessary rebuild is cheap and a stale
    headline table is not.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()[:16]
