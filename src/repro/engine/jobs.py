"""Declarative job specifications: the nodes of the experiment job graph.

Every figure of the paper is a sweep over (benchmark × binary-flavour ×
scheme) cells, and every cell decomposes into the same three-stage chain:

``BuildJob``
    compile one (benchmark, flavour) binary;
``TraceJob``
    run the binary through the functional emulator and collect its dynamic
    instruction trace;
``SimulateJob``
    replay one trace through the timing pipeline under one branch-handling
    scheme.

A job is pure data — picklable, hashable, and identified by a
content-addressed ``key`` derived from everything that determines its
output.  Two experiments that need the same artifact therefore plan the
*same* job, which is what makes deduplication and the persistent artifact
store work across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.pipeline.machine import MachineSpec
from repro.pipeline.windowed import SamplingSpec

#: Binary flavours used by the evaluation (re-exported by the runner shim).
BASELINE = "baseline"
IF_CONVERTED = "if-converted"

#: The flavours a planner will accept.
FLAVOURS = (BASELINE, IF_CONVERTED)


# ----------------------------------------------------------------------
# Scheme specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeSpec:
    """A declarative, picklable description of one branch-handling scheme.

    ``kind`` names a factory from :mod:`repro.experiments.setup` and
    ``options`` its keyword arguments as a sorted tuple of pairs, so a spec
    can cross process boundaries (unlike a closure or ``functools.partial``
    over a lambda) and contributes deterministically to cache keys.
    """

    kind: str
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **options: Any) -> "SchemeSpec":
        """Build a spec from a factory kind plus keyword options (sorted
        into the canonical tuple form)."""
        return cls(kind=kind, options=tuple(sorted(options.items())))

    # ------------------------------------------------------------------
    def build(self):
        """Instantiate the scheme (a fresh object on every call)."""
        # Imported lazily: repro.experiments imports repro.engine, so a
        # top-level import here would be circular.
        from repro.experiments.setup import scheme_factory

        return scheme_factory(self.kind)(**dict(self.options))

    def token(self) -> Dict[str, Any]:
        """The scheme's contribution to a cache key."""
        return {"kind": self.kind, "options": dict(self.options)}

    def describe(self) -> str:
        """Human-readable form, e.g. ``predicate(split_pvt=True)``."""
        if not self.options:
            return self.kind
        opts = ",".join(f"{k}={v}" for k, v in self.options)
        return f"{self.kind}({opts})"


# ----------------------------------------------------------------------
# Job specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """Base of every job-graph node: a content-addressed unit of work."""

    key: str
    benchmark: str
    flavour: str

    @property
    def cell(self) -> Tuple[str, str]:
        """The (benchmark, flavour) cell this job belongs to."""
        return (self.benchmark, self.flavour)


@dataclass(frozen=True)
class BuildJob(JobSpec):
    """Compile one binary flavour of one benchmark."""

    profile_budget: int = 20_000


@dataclass(frozen=True)
class TraceJob(JobSpec):
    """Collect the dynamic trace of one compiled binary."""

    instructions: int = 0
    build_key: str = ""


@dataclass(frozen=True)
class SimulateJob(JobSpec):
    """Replay one trace through the timing pipeline under one scheme.

    ``machine`` declares the simulated machine: the default
    :class:`~repro.pipeline.machine.MachineSpec` is the Table 1 configuration,
    a non-default spec carries validated overrides that the executor folds
    into the :class:`~repro.pipeline.config.PipelineConfig` it simulates
    with.  The spec contributes to ``key`` (see
    :func:`repro.engine.planner.machine_fingerprint`), so results of
    different machines can never collide in the artifact store.
    """

    scheme: SchemeSpec = SchemeSpec(kind="conventional")
    trace_key: str = ""
    machine: MachineSpec = field(default_factory=MachineSpec)
    #: Sampled-simulation parameters (``None`` = full simulation).  A
    #: sampled job's key folds the spec in, so approximate results can
    #: never shadow exact ones in the artifact store; sampled jobs are
    #: also excluded from lane batching (the batched kernel has no
    #: window/warmup machinery).
    sampling: Optional[SamplingSpec] = None


@dataclass(frozen=True)
class BatchedSimulateJob(JobSpec):
    """N same-cell simulate jobs stepped in lockstep over one trace.

    A batch is an *execution* grouping, not a cache identity: each lane
    keeps its own content-addressed :class:`SimulateJob` key, the executor
    stores one result per lane under that key, and a lane served from the
    store never enters a batch at all.  Cached artifacts are therefore
    bit-for-bit interchangeable between batched and per-cell runs.
    """

    lanes: Tuple[SimulateJob, ...] = ()
    trace_key: str = ""
