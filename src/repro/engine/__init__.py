"""The job-graph experiment engine.

Every figure of the paper is a sweep over (benchmark × binary-flavour ×
scheme) cells.  This package turns those sweeps into data and executes them
efficiently:

* :mod:`repro.engine.jobs` — declarative :class:`JobSpec` objects (build a
  binary, collect a trace, simulate a scheme) and picklable
  :class:`SchemeSpec` scheme descriptions;
* :mod:`repro.engine.planner` — :class:`ExperimentDefinition` sweeps and a
  planner that expands any number of them into one deduplicated DAG;
* :mod:`repro.engine.store` — a content-addressed on-disk
  :class:`ArtifactStore` persisting binaries, traces and results across
  processes;
* :mod:`repro.engine.executor` — the :class:`ExecutionEngine`, which runs a
  graph serially or over ``--jobs N`` worker processes and owns trace
  lifetime (bounded in-memory LRU);
* :mod:`repro.engine.run` — :func:`run_cells`, the unified entrypoint every
  consumer (experiments, sweeps, the serve daemon, :mod:`repro.api`) runs
  cell requests through;
* :mod:`repro.engine.hashing` — stable content hashing for cache keys.
"""

from repro.engine.executor import (
    EngineStats,
    ExecutionEngine,
    ExperimentOutputs,
    JobTiming,
    resolve_engine,
)
from repro.engine.hashing import canonicalize, stable_hash
from repro.engine.jobs import (
    BASELINE,
    FLAVOURS,
    IF_CONVERTED,
    BuildJob,
    JobSpec,
    SchemeSpec,
    SimulateJob,
    TraceJob,
)
from repro.engine.planner import (
    CellRequest,
    ExperimentDefinition,
    JobGraph,
    machine_fingerprint,
    plan,
    sweep,
)
from repro.engine.run import CellRunOutcome, run_cells
from repro.pipeline.machine import MachineSpec
from repro.engine.store import (
    ArtifactStore,
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    STORE_FORMAT_VERSION,
    default_cache_dir,
)

__all__ = [
    "BASELINE",
    "IF_CONVERTED",
    "FLAVOURS",
    "JobSpec",
    "BuildJob",
    "TraceJob",
    "SimulateJob",
    "SchemeSpec",
    "CellRequest",
    "ExperimentDefinition",
    "JobGraph",
    "MachineSpec",
    "machine_fingerprint",
    "plan",
    "sweep",
    "ArtifactStore",
    "STORE_FORMAT_VERSION",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "default_cache_dir",
    "ExecutionEngine",
    "EngineStats",
    "ExperimentOutputs",
    "JobTiming",
    "CellRunOutcome",
    "run_cells",
    "resolve_engine",
    "stable_hash",
    "canonicalize",
]
