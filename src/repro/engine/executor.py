"""The execution engine: runs job graphs serially or across processes.

:class:`ExecutionEngine` is the one place artifacts are materialised.  Every
request goes through the same three-tier lookup — bounded in-memory cache,
then the persistent :class:`~repro.engine.store.ArtifactStore` (when one is
configured), then actual work — and every tier records what it did in
:class:`EngineStats`, which is how the tests (and the acceptance criteria)
prove that a second run recompiles and re-traces nothing.

Trace lifetime is an engine responsibility: traces are the only sizeable
artifact (tens of MB for the full suite at paper budgets), so the engine
keeps at most ``max_cached_traces`` of them in memory and evicts in LRU
order.  Experiments no longer manage trace memory by hand.

With ``jobs > 1`` the engine executes independent (benchmark, flavour) cells
in parallel worker processes; workers share the on-disk store (writes are
atomic) and return their (small) results by pickle.  Traces are never
queue-pickled: with a store they travel as columnar artifact files, and
without one the parent spills its in-memory traces into an ephemeral
trace-only store the workers read back.  Simulation is deterministic given
a trace and a scheme spec, so parallel runs are bit-identical to serial
ones.

**Supervision.** Parallel execution survives worker death (an OOM-killed
or crashed process surfaces as a broken pool): the lost cells' jobs are
re-planned — workers consult the store first, so finished sub-jobs are
never redone — and retried on a fresh pool, up to ``max_retries`` rounds;
past the budget the engine degrades to in-process serial execution of the
remainder, so a sweep completes (slowly) rather than dying.  A progress
watchdog (``job_timeout`` seconds without any cell completing) kills a
stalled pool the same way.  :class:`EngineStats` accounts for all of it
(``workers_lost``/``jobs_retried``/``jobs_timed_out``).
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import faults
from repro.log import get_logger

from repro.compiler.binaries import BinaryFactory
from repro.emulator.executor import Emulator
from repro.emulator.tracepack import (
    ChunkedPackWriter,
    ChunkedTracePack,
    TracePack,
    pack_supported,
)
from repro.engine.jobs import (
    BASELINE,
    IF_CONVERTED,
    BatchedSimulateJob,
    SchemeSpec,
    SimulateJob,
)
from repro.engine.planner import (
    ExperimentDefinition,
    JobGraph,
    make_batched_simulate_job,
    make_build_job,
    make_simulate_job,
    make_trace_job,
    plan,
)
from repro.engine.store import BINARIES, CHECKPOINTS, RESULTS, TRACES, ArtifactStore
from repro.perf.flags import optimizations_enabled
from repro.pipeline.batched import LaneSpec, simulate_lanes
from repro.pipeline.core import OutOfOrderCore, SimulationResult
from repro.pipeline.machine import MachineSpec
from repro.pipeline.windowed import SimulationCheckpoint, simulate_windowed
from repro.program.program import Program
from repro.workloads.registry import build_workload
from repro.workloads.spec_suite import workload_names

_log = get_logger(__name__)

#: (benchmark, flavour)
Cell = Tuple[str, str]

#: What one parallel worker receives:
#: (profile, store root, spill root, jobs, engine options).  The options
#: dict carries the streaming knobs (``checkpoint_every``,
#: ``trace_segment_rows``) so a retried worker resumes a windowed run from
#: its persisted checkpoint instead of starting over.
_CellPayload = Tuple[
    Any, Optional[str], Optional[str], List[SimulateJob], Dict[str, Any]
]

#: What an experiment gets back: (benchmark, label) → result.
ExperimentOutputs = Dict[Tuple[str, str], SimulationResult]


@dataclass
class EngineStats:
    """What the engine actually did (vs. served from its caches)."""

    binaries_built: int = 0
    binaries_loaded: int = 0
    traces_collected: int = 0
    traces_loaded: int = 0
    simulations_run: int = 0
    results_loaded: int = 0
    #: Lane-batched execution accounting: how many batched kernel launches
    #: happened and how many simulate jobs rode in them.  ``simulations_run``
    #: still counts every *job* (lanes included), so the cache-proof
    #: invariant "second run simulates nothing" is batch-transparent.
    batches_run: int = 0
    batched_lanes: int = 0
    #: Wall-clock seconds spent collecting traces / running simulations
    #: (work actually performed, cache hits excluded).
    trace_seconds: float = 0.0
    simulate_seconds: float = 0.0
    #: Fault-recovery accounting: simulate jobs resubmitted after a pool
    #: failure, worker-death events survived, and jobs whose pool was
    #: killed by the progress watchdog.  All zero on a clean run.
    jobs_retried: int = 0
    workers_lost: int = 0
    jobs_timed_out: int = 0
    #: Windowed-simulation accounting: mid-run checkpoints persisted to the
    #: store, and simulate jobs that resumed from one (a retry after a kill
    #: picks up mid-trace instead of restarting).  Zero unless
    #: ``checkpoint_every`` is configured.
    checkpoints_written: int = 0
    checkpoints_resumed: int = 0

    def merge(self, other: Dict[str, Any]) -> None:
        """Accumulate a worker's stats dict into this record (field-wise add)."""
        for field_ in fields(self):
            setattr(
                self,
                field_.name,
                getattr(self, field_.name) + other.get(field_.name, 0),
            )

    def as_dict(self) -> Dict[str, Any]:
        """The stats as a plain dict (the cross-process wire form)."""
        return {field_.name: getattr(self, field_.name) for field_ in fields(self)}

    def render(self) -> str:
        """One human-readable summary line of what the engine did."""
        batched = ""
        if self.batches_run:
            batched = f", {self.batched_lanes} lanes in {self.batches_run} batches"
        recovered = ""
        if self.workers_lost or self.jobs_retried or self.jobs_timed_out:
            recovered = (
                f", recovered from {self.workers_lost} lost workers "
                f"({self.jobs_retried} jobs retried, "
                f"{self.jobs_timed_out} timed out)"
            )
        if self.checkpoints_written or self.checkpoints_resumed:
            recovered += (
                f", wrote {self.checkpoints_written} checkpoints "
                f"({self.checkpoints_resumed} resumed)"
            )
        return (
            f"built {self.binaries_built} binaries ({self.binaries_loaded} cached), "
            f"collected {self.traces_collected} traces ({self.traces_loaded} cached) "
            f"in {self.trace_seconds:.2f}s, "
            f"ran {self.simulations_run} simulations ({self.results_loaded} cached) "
            f"in {self.simulate_seconds:.2f}s{batched}{recovered}"
        )


@dataclass
class JobTiming:
    """Wall-clock timing of one simulate job (the engine's result records).

    ``cached`` jobs were served from the artifact store; their ``seconds``
    measure the load, not a simulation, and are excluded from throughput
    aggregation by the bench harness.

    ``lanes`` is the size of the batched kernel launch the job rode in
    (1 for a per-cell run).  Batched jobs are attributed an equal share of
    the batch's wall clock — the lanes replay the same trace, so the
    per-instruction split is exactly proportional — keeping per-cell
    simulate seconds meaningful for throughput and regression accounting.
    """

    key: str
    benchmark: str
    flavour: str
    scheme: str
    seconds: float
    instructions: int
    cycles: int
    cached: bool
    lanes: int = 1

    def instructions_per_second(self) -> float:
        """Simulated-instruction throughput of this job (0 when untimed)."""
        return self.instructions / self.seconds if self.seconds > 0 else 0.0


class ExecutionEngine:
    """Materialises binaries, traces and results for job graphs."""

    def __init__(
        self,
        profile=None,
        store: Optional[ArtifactStore] = None,
        jobs: int = 1,
        max_cached_traces: int = 2,
        trace_spill: Optional[ArtifactStore] = None,
        oracle_stats: bool = True,
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        trace_segment_rows: Optional[int] = None,
    ) -> None:
        # Lazy import: repro.experiments imports repro.engine.
        from repro.experiments.setup import PAPER_PROFILE

        self.profile = profile or PAPER_PROFILE
        self.store = store
        #: Supervision budget for parallel runs: how many retry rounds a
        #: broken/stalled pool is rebuilt before degrading to in-process
        #: serial execution of the remaining cells.
        self.max_retries = max(0, int(max_retries))
        #: Progress-watchdog window (seconds): with ``jobs > 1``, if no
        #: cell completes for this long the pool is presumed wedged,
        #: killed, and its outstanding cells retried.  ``None`` disables
        #: the watchdog.  This is deliberately *progress*-based — the pool
        #: API cannot observe when a queued cell starts running, so a
        #: per-job clock would penalise jobs for time spent queued.
        self.job_timeout = float(job_timeout) if job_timeout else None
        #: Ephemeral trace-only store used by parallel runs without a
        #: persistent store: the parent spills its in-memory traces there as
        #: columnar files and workers read them back, so traces cross the
        #: process boundary by file instead of by queue pickle.
        self.trace_spill = trace_spill
        #: When False the engine skips the opportunistic oracle-accuracy
        #: pass over collected traces (the bench harness's engines never
        #: read it).
        self.oracle_stats = bool(oracle_stats)
        #: Windowed-simulation cadence (rows per window): with a store, a
        #: resume checkpoint is persisted after each window, so a killed
        #: worker's retry continues mid-trace bit-identically.  ``None``
        #: keeps the straight-through scalar path.  Checkpointed jobs skip
        #: lane batching (the batched kernel has no window machinery).
        if checkpoint_every is not None and int(checkpoint_every) < 1:
            raise ValueError(
                f"checkpoint_every must be a positive row count, got {checkpoint_every}"
            )
        self.checkpoint_every = (
            int(checkpoint_every) if checkpoint_every is not None else None
        )
        #: Trace-collection segmentation (rows per RTP3 segment): budgets
        #: above this stream completed segments to the store instead of
        #: materialising the whole pack, bounding peak memory.  ``None``
        #: keeps monolithic collection (which is what lane batching needs).
        if trace_segment_rows is not None and int(trace_segment_rows) < 1:
            raise ValueError(
                f"trace_segment_rows must be a positive row count, got {trace_segment_rows}"
            )
        self.trace_segment_rows = (
            int(trace_segment_rows) if trace_segment_rows is not None else None
        )
        self.jobs = max(1, int(jobs))
        self.max_cached_traces = max(1, int(max_cached_traces))
        self.factory = BinaryFactory(profile_budget=self.profile.profile_budget)
        self.stats = EngineStats()
        #: Per-simulate-job wall-clock records, in execution order.
        self.job_timings: List[JobTiming] = []
        self._binaries: Dict[Cell, Program] = {}
        #: In-memory trace cache: columnar packs on the optimized path,
        #: ``List[DynInst]`` on the reference path (``REPRO_OPT=0``).
        self._traces: "OrderedDict[Cell, Any]" = OrderedDict()
        #: Per-cell static-oracle accuracy, filled opportunistically while a
        #: columnar trace is in hand (one cheap vectorized pass), so the
        #: idealized study never re-materialises an evicted trace just to
        #: recompute one scalar.  Read by
        #: :func:`repro.experiments.idealized.oracle_accuracies`.
        self._oracle_accuracy_cache: Dict[Cell, float] = {}

    # ------------------------------------------------------------------
    def benchmarks(self) -> List[str]:
        """Benchmarks selected by the profile (default: the full suite)."""
        return list(self.profile.benchmarks or workload_names())

    # ------------------------------------------------------------------
    # Artifact materialisation (in-memory cache → store → work)
    # ------------------------------------------------------------------
    def build_binary(self, benchmark: str, flavour: str) -> Program:
        """Return the compiled binary of one cell, building it if needed."""
        cell = (benchmark, flavour)
        cached = self._binaries.get(cell)
        if cached is not None:
            return cached
        job = make_build_job(benchmark, flavour, self.factory)
        program: Optional[Program] = None
        if self.store is not None:
            program = self.store.get(BINARIES, job.key)
        if program is not None:
            self.stats.binaries_loaded += 1
        else:
            program = self._compile(benchmark, flavour)
            self.stats.binaries_built += 1
            if self.store is not None:
                self.store.put(
                    BINARIES,
                    job.key,
                    program,
                    metadata={"benchmark": benchmark, "flavour": flavour},
                )
        self._binaries[cell] = program
        return program

    def _compile(self, benchmark: str, flavour: str) -> Program:
        # ``benchmark`` resolves through the workload registry, so it may be
        # a built-in name, a library name, or a spec/trace file path — the
        # resolution re-runs identically in worker processes.
        def generator() -> Program:
            return build_workload(benchmark)

        if flavour == BASELINE:
            return self.factory.build_baseline(benchmark, generator)
        if flavour == IF_CONVERTED:
            return self.factory.build_if_converted(benchmark, generator)
        raise ValueError(f"unknown binary flavour {flavour!r}")

    def collect_trace(self, benchmark: str, flavour: str):
        """Return the dynamic trace of one cell, collecting it if needed.

        On the optimized path the trace is a columnar
        :class:`~repro.emulator.tracepack.TracePack` (built directly by the
        emulator's :meth:`~repro.emulator.executor.Emulator.run_pack` loop);
        with ``REPRO_OPT=0`` — or without numpy — it is the reference
        ``List[DynInst]``.  Traces loaded from a store are converted to the
        active representation, so both paths stay end-to-end homogeneous.
        """
        cell = (benchmark, flavour)
        cached = self._traces.get(cell)
        if cached is not None:
            self._traces.move_to_end(cell)
            return cached
        build = make_build_job(benchmark, flavour, self.factory)
        job = make_trace_job(build, self.profile.instructions_per_benchmark)
        optimized = optimizations_enabled() and pack_supported()
        trace = None
        trace_store = self.store if self.store is not None else self.trace_spill
        if trace_store is not None:
            trace = trace_store.get(TRACES, job.key)
        if trace is not None:
            self.stats.traces_loaded += 1
            # Convert to the active representation in either direction, so
            # both paths stay end-to-end homogeneous regardless of which
            # mode populated the store.
            if not optimized and isinstance(trace, (TracePack, ChunkedTracePack)):
                trace = trace.to_dyninsts()
            elif optimized and not isinstance(trace, (TracePack, ChunkedTracePack)):
                trace = TracePack.from_dyninsts(trace)
        else:
            program = self.build_binary(benchmark, flavour)
            emulator = Emulator(program)
            streamed = (
                optimized
                and emulator.optimized
                and self.store is not None
                and self.trace_segment_rows is not None
                and job.instructions > self.trace_segment_rows
            )
            started = perf_counter()
            if streamed:
                trace = self._collect_trace_streaming(emulator, job)
            elif optimized and emulator.optimized:
                trace = emulator.run_pack(job.instructions)
            else:
                trace = list(emulator.run(job.instructions))
            self.stats.trace_seconds += perf_counter() - started
            self.stats.traces_collected += 1
            # Write back to the persistent store only: the spill store is a
            # parent-to-worker handoff, and each cell is assigned to exactly
            # one worker, so a worker-side spill write would never be read.
            # (The streaming path already wrote through the store.)
            if self.store is not None and not streamed:
                self.store.put(
                    TRACES,
                    job.key,
                    trace,
                    metadata={
                        "benchmark": benchmark,
                        "flavour": flavour,
                        "instructions": len(trace),
                    },
                )
        if (
            self.oracle_stats
            and cell not in self._oracle_accuracy_cache
            and isinstance(trace, (TracePack, ChunkedTracePack))
        ):
            # Vectorized pass, ~ms: record the scalar while the trace is in
            # hand.  (The object path skips this — its reference loop is
            # slow, and oracle_accuracies computes lazily on demand.)
            from repro.emulator.trace import trace_statistics

            self._oracle_accuracy_cache[cell] = trace_statistics(
                trace
            ).static_oracle_accuracy()
        self._traces[cell] = trace
        self._traces.move_to_end(cell)
        while len(self._traces) > self.max_cached_traces:
            self._traces.popitem(last=False)
        return trace

    def _collect_trace_streaming(self, emulator: Emulator, job) -> Any:
        """Collect one trace segment-by-segment straight into the store.

        Completed RTP3 segments are flushed to a scratch file as the
        emulator produces them — the full outcome list is never
        materialised, so peak memory is bounded by ``trace_segment_rows``
        regardless of the instruction budget.  The finished file is adopted
        by the store atomically (:meth:`~repro.engine.store.ArtifactStore.
        put_file`) and read back as a lazily-decoded
        :class:`~repro.emulator.tracepack.ChunkedTracePack`.
        """
        scratch = self.store.scratch_path(TRACES)
        try:
            with open(scratch, "wb") as handle:
                writer = ChunkedPackWriter(handle)
                emulator.run_pack(
                    job.instructions,
                    segment_rows=self.trace_segment_rows,
                    on_segment=writer.add_segment,
                )
                rows = writer.finish()
            self.store.put_file(
                TRACES,
                job.key,
                scratch,
                metadata={
                    "benchmark": job.benchmark,
                    "flavour": job.flavour,
                    "instructions": rows,
                    "segments": writer.segments,
                },
            )
        finally:
            try:
                os.remove(scratch)
            except OSError:
                pass
        trace = self.store.get(TRACES, job.key)
        if trace is None:  # pragma: no cover - requires concurrent damage
            raise RuntimeError(
                f"streamed trace {job.key} unreadable immediately after write"
            )
        return trace

    def release_trace(self, benchmark: str, flavour: str) -> None:
        """Drop one trace from the in-memory cache (a no-op if absent)."""
        self._traces.pop((benchmark, flavour), None)

    def simulate(
        self,
        benchmark: str,
        flavour: str,
        scheme: SchemeSpec,
        machine: Optional[MachineSpec] = None,
        sampling=None,
    ) -> SimulationResult:
        """Return the simulation result of one cell under one scheme.

        ``machine`` selects the simulated machine configuration (default:
        the Table 1 machine); ``sampling`` (a
        :class:`~repro.pipeline.windowed.SamplingSpec`) requests sampled
        simulation, cached under its own key.
        """
        build = make_build_job(benchmark, flavour, self.factory)
        trace_job = make_trace_job(build, self.profile.instructions_per_benchmark)
        job = make_simulate_job(trace_job, scheme, machine, sampling)
        return self._run_simulation(job)

    def _run_simulation(self, job: SimulateJob) -> SimulationResult:
        cached = self._load_cached_result(job)
        if cached is not None:
            return cached
        return self._simulate_uncached(job)

    def _load_cached_result(self, job: SimulateJob) -> Optional[SimulationResult]:
        """Serve one simulate job from the artifact store, if present."""
        if self.store is None:
            return None
        started = perf_counter()
        result = self.store.get(RESULTS, job.key)
        if result is None:
            return None
        self.stats.results_loaded += 1
        self._record_timing(job, result, perf_counter() - started, cached=True)
        return result

    def _checkpointing(self) -> bool:
        """True when windowed resume checkpoints are configured and usable."""
        return self.checkpoint_every is not None and self.store is not None

    def _simulate_uncached(self, job: SimulateJob) -> SimulationResult:
        """Run one simulate job through the scalar core (store miss path).

        Jobs with a sampling spec, and all jobs when ``checkpoint_every``
        is configured, run through the windowed driver
        (:func:`~repro.pipeline.windowed.simulate_windowed`) — checkpoints
        are loaded from / written through the store under the job's own
        key, so a retried worker resumes mid-trace bit-identically.
        """
        faults.on_simulate_launch()
        trace = self.collect_trace(job.benchmark, job.flavour)
        core = OutOfOrderCore(config=job.machine.build_config())
        started = perf_counter()
        if (job.sampling is not None or self._checkpointing()) and core.optimized:
            result = self._simulate_windowed(job, core, trace)
        else:
            scheme = job.scheme.build()
            result = core.run(trace, scheme, program_name=job.benchmark)
        elapsed = perf_counter() - started
        self.stats.simulations_run += 1
        self.stats.simulate_seconds += elapsed
        self._record_timing(job, result, elapsed, cached=False)
        self._store_result(job, result)
        return result

    def _simulate_windowed(
        self, job: SimulateJob, core: OutOfOrderCore, trace
    ) -> SimulationResult:
        """One simulate job via the windowed driver (checkpoints/sampling)."""
        checkpoint: Optional[SimulationCheckpoint] = None
        on_checkpoint = None
        window_rows = None
        if self._checkpointing():
            window_rows = self.checkpoint_every
            loaded = self.store.get(CHECKPOINTS, job.key)
            if isinstance(loaded, SimulationCheckpoint) and loaded.matches(len(trace)):
                checkpoint = loaded
                self.stats.checkpoints_resumed += 1
                _log.info(
                    "resuming %s/%s (%s) from checkpoint at %d/%d rows",
                    job.benchmark,
                    job.flavour,
                    job.scheme.describe(),
                    loaded.rows_done,
                    loaded.total_rows,
                )

            def on_checkpoint(ckpt: SimulationCheckpoint) -> None:
                self.store.put(
                    CHECKPOINTS,
                    job.key,
                    ckpt,
                    metadata={
                        "benchmark": job.benchmark,
                        "flavour": job.flavour,
                        "scheme": job.scheme.describe(),
                        "rows_done": ckpt.rows_done,
                        "total_rows": ckpt.total_rows,
                    },
                )
                self.stats.checkpoints_written += 1
                faults.on_checkpoint_write()

        result = simulate_windowed(
            core,
            trace,
            job.scheme.build(),
            program_name=job.benchmark,
            window_rows=window_rows,
            sampling=job.sampling,
            checkpoint=checkpoint,
            on_checkpoint=on_checkpoint,
        )
        if self._checkpointing():
            # The result is about to be stored; a surviving checkpoint
            # would only waste eviction budget.
            self.store.discard(CHECKPOINTS, job.key)
        return result

    def _store_result(self, job: SimulateJob, result: SimulationResult) -> None:
        if self.store is not None:
            self.store.put(
                RESULTS,
                job.key,
                result,
                metadata={
                    "benchmark": job.benchmark,
                    "flavour": job.flavour,
                    "scheme": job.scheme.describe(),
                },
            )

    # ------------------------------------------------------------------
    # Lane-batched execution
    # ------------------------------------------------------------------
    def run_cell_jobs(
        self, cell_jobs: Sequence[SimulateJob]
    ) -> Dict[str, SimulationResult]:
        """Run one cell's simulate jobs, lane-batching where profitable.

        Cached jobs are served from the store first and never enter a
        batch.  When at least two uncached jobs remain and the optimized
        columnar path is active, they run as lanes of one batched kernel
        launch (:func:`repro.pipeline.batched.simulate_lanes`); results
        are stored under each lane's own key, so later runs — batched or
        not — hit the identical artifacts.
        """
        results: Dict[str, SimulationResult] = {}
        pending: List[SimulateJob] = []
        for job in cell_jobs:
            cached = self._load_cached_result(job)
            if cached is not None:
                results[job.key] = cached
            else:
                pending.append(job)
        if not pending:
            return results
        # Sampled jobs never batch (the lockstep kernel has no window or
        # warmup machinery), and checkpointed runs take the windowed scalar
        # path per job; chunked traces fall through too — the batched
        # kernel requires one monolithic pack.
        batchable = [job for job in pending if job.sampling is None]
        if (
            len(batchable) >= 2
            and not self._checkpointing()
            and optimizations_enabled()
            and pack_supported()
        ):
            trace = self.collect_trace(batchable[0].benchmark, batchable[0].flavour)
            if isinstance(trace, TracePack):
                batch = make_batched_simulate_job(batchable)
                results.update(self._run_batch(batch, trace))
                pending = [job for job in pending if job.sampling is not None]
        for job in pending:
            results[job.key] = self._simulate_uncached(job)
        return results

    def _run_batch(
        self, batch: BatchedSimulateJob, trace: TracePack
    ) -> Dict[str, SimulationResult]:
        """Execute a batched simulate job; fan results out to lane keys."""
        faults.on_simulate_launch()
        jobs = batch.lanes
        lanes = [
            LaneSpec(
                scheme_factory=job.scheme.build,
                config=job.machine.build_config(),
                group_key=job.scheme,
            )
            for job in jobs
        ]
        started = perf_counter()
        lane_results = simulate_lanes(trace, lanes, program_name=batch.benchmark)
        elapsed = perf_counter() - started
        n = len(jobs)
        self.stats.simulations_run += n
        self.stats.simulate_seconds += elapsed
        self.stats.batches_run += 1
        self.stats.batched_lanes += n
        share = elapsed / n
        results: Dict[str, SimulationResult] = {}
        for job, result in zip(jobs, lane_results):
            self._record_timing(job, result, share, cached=False, lanes=n)
            self._store_result(job, result)
            results[job.key] = result
        return results

    def _record_timing(
        self,
        job: SimulateJob,
        result: SimulationResult,
        seconds: float,
        cached: bool,
        lanes: int = 1,
    ) -> None:
        self.job_timings.append(
            JobTiming(
                key=job.key,
                benchmark=job.benchmark,
                flavour=job.flavour,
                scheme=job.scheme.describe(),
                seconds=seconds,
                instructions=result.metrics.committed_instructions,
                cycles=result.metrics.cycles,
                cached=cached,
                lanes=lanes,
            )
        )

    # ------------------------------------------------------------------
    # Graph execution
    # ------------------------------------------------------------------
    def plan(self, definitions: Sequence[ExperimentDefinition]) -> JobGraph:
        """Expand ``definitions`` into one deduplicated job graph under this
        engine's profile and binary factory."""
        return plan(
            definitions, self.profile.instructions_per_benchmark, self.factory
        )

    def run(
        self,
        definitions: Sequence[ExperimentDefinition],
        jobs: Optional[int] = None,
    ) -> Dict[str, ExperimentOutputs]:
        """Plan and execute ``definitions``; return per-experiment outputs."""
        graph = self.plan(definitions)
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        cells = graph.cells()
        if jobs > 1 and len(cells) > 1:
            results = self._execute_parallel(cells, jobs)
        else:
            results = self._execute_serial(cells)
        outputs: Dict[str, ExperimentOutputs] = {}
        for name, table in graph.outputs.items():
            outputs[name] = {slot: results[key] for slot, key in table.items()}
        return outputs

    def _execute_serial(
        self, cells: "OrderedDict[Cell, List[SimulateJob]]"
    ) -> Dict[str, SimulationResult]:
        results: Dict[str, SimulationResult] = {}
        for cell_jobs in cells.values():
            results.update(self.run_cell_jobs(cell_jobs))
        return results

    def _execute_parallel(
        self, cells: "OrderedDict[Cell, List[SimulateJob]]", jobs: int
    ) -> Dict[str, SimulationResult]:
        """Run cells across worker processes, surviving worker failures.

        Each round submits the pending cells to a fresh pool; cells lost to
        a dead worker or the progress watchdog are retried for up to
        ``max_retries`` further rounds (their finished sub-jobs come back
        from the store, so a retry only redoes lost work).  Past the budget
        the remainder runs serially in this process — degraded, never dead.
        """
        store_root = self.store.root if self.store is not None else None
        spill_root: Optional[str] = None
        if store_root is None:
            # No persistent store: traces still cross the process boundary
            # by file, never by queue pickle.  Any trace the parent already
            # holds in memory is spilled as a columnar pack for the workers;
            # the directory lives only for the duration of the pool.
            spill_root = tempfile.mkdtemp(prefix="repro-trace-spill-")
            self._spill_traces(ArtifactStore(spill_root))
        options: Dict[str, Any] = {
            "checkpoint_every": self.checkpoint_every,
            "trace_segment_rows": self.trace_segment_rows,
        }
        payloads: List[_CellPayload] = [
            (self.profile, store_root, spill_root, list(cell_jobs), options)
            for cell_jobs in cells.values()
        ]
        results: Dict[str, SimulationResult] = {}
        try:
            pending = payloads
            rounds = 0
            while pending:
                lost = self._run_pool(pending, min(jobs, len(pending)), results)
                if not lost:
                    break
                rounds += 1
                if rounds > self.max_retries:
                    _log.warning(
                        "retry budget exhausted after %d rounds; running "
                        "%d remaining cells serially in-process",
                        self.max_retries,
                        len(lost),
                    )
                    for payload in lost:
                        results.update(self.run_cell_jobs(payload[3]))
                    break
                self.stats.jobs_retried += sum(len(p[3]) for p in lost)
                _log.warning(
                    "retrying %d lost cells on a fresh worker pool "
                    "(round %d of %d)",
                    len(lost),
                    rounds,
                    self.max_retries,
                )
                pending = lost
        finally:
            if spill_root is not None:
                shutil.rmtree(spill_root, ignore_errors=True)
        return results

    def _run_pool(
        self,
        payloads: List[_CellPayload],
        processes: int,
        results: Dict[str, SimulationResult],
    ) -> List[_CellPayload]:
        """One supervised pool round; return the cells that were lost.

        Merges every completed cell into ``results``/``self.stats`` as it
        lands.  Cells whose worker died (broken pool) or whose pool made no
        progress within ``job_timeout`` are returned for the caller to
        retry; a worker raising an ordinary exception is a *job* failure,
        not a worker failure, and propagates to the caller unchanged.
        """
        executor = ProcessPoolExecutor(
            max_workers=processes, mp_context=_mp_context()
        )
        futures: Dict[Future, _CellPayload] = {
            executor.submit(_execute_cell, payload): payload
            for payload in payloads
        }
        outstanding: Set[Future] = set(futures)
        lost: List[_CellPayload] = []
        pool_broken = False
        try:
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=self.job_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Watchdog: nothing completed for job_timeout seconds.
                    # The pool is presumed wedged — kill it and report the
                    # outstanding cells as lost.
                    timed_out = [futures[future] for future in outstanding]
                    jobs_hit = sum(len(p[3]) for p in timed_out)
                    self.stats.jobs_timed_out += jobs_hit
                    self.stats.workers_lost += 1
                    _log.warning(
                        "no cell completed within %.1fs; killing the pool "
                        "(%d cells / %d jobs outstanding)",
                        self.job_timeout,
                        len(timed_out),
                        jobs_hit,
                    )
                    lost.extend(timed_out)
                    self._terminate_workers(executor)
                    break
                for future in done:
                    payload = futures[future]
                    try:
                        cell_results, stats, timings, oracle = future.result()
                    except BrokenProcessPool:
                        if not pool_broken:
                            pool_broken = True
                            self.stats.workers_lost += 1
                            _log.warning(
                                "a worker process died; lost cells will be "
                                "re-planned against the store and retried"
                            )
                        lost.append(payload)
                        continue
                    results.update(cell_results)
                    self.stats.merge(stats)
                    self.job_timings.extend(timings)
                    # Worker-side derived trace scalars come home with the
                    # results, so the parent never re-materialises a trace
                    # just to recompute them.
                    self._oracle_accuracy_cache.update(oracle)
                if pool_broken:
                    # Every future still outstanding on a broken pool is
                    # doomed; collect them now instead of draining errors.
                    lost.extend(futures[future] for future in outstanding)
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return lost

    @staticmethod
    def _terminate_workers(executor: ProcessPoolExecutor) -> None:
        """Hard-kill a pool's worker processes (stalled-pool recovery).

        ``ProcessPoolExecutor`` has no public kill switch; its
        ``_processes`` map has been stable across CPython releases and is
        the accepted escape hatch.  Guarded so an implementation change
        degrades to leaking the stalled workers, not crashing the run.
        """
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - platform specific
                pass

    def _spill_traces(self, spill: ArtifactStore) -> None:
        """Write the in-memory trace cache into ``spill`` (columnar files)."""
        for (benchmark, flavour), trace in self._traces.items():
            build = make_build_job(benchmark, flavour, self.factory)
            job = make_trace_job(build, self.profile.instructions_per_benchmark)
            spill.put(
                TRACES,
                job.key,
                trace,
                metadata={
                    "benchmark": benchmark,
                    "flavour": flavour,
                    "instructions": len(trace),
                },
            )


def _mp_context():
    """Prefer fork (inherits ``sys.path`` hacks of test harnesses)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _execute_cell(
    payload: _CellPayload,
) -> Tuple[
    Dict[str, SimulationResult], Dict[str, Any], List[JobTiming], Dict[Cell, float]
]:
    """Worker entry point: run one cell's simulations in a fresh engine."""
    profile, store_root, spill_root, cell_jobs, options = payload
    engine = ExecutionEngine(
        profile=profile,
        store=ArtifactStore(store_root) if store_root is not None else None,
        max_cached_traces=1,
        trace_spill=ArtifactStore(spill_root) if spill_root is not None else None,
        checkpoint_every=options.get("checkpoint_every"),
        trace_segment_rows=options.get("trace_segment_rows"),
    )
    results = engine.run_cell_jobs(cell_jobs)
    return (
        results,
        engine.stats.as_dict(),
        engine.job_timings,
        engine._oracle_accuracy_cache,
    )


def resolve_engine(engine=None, runner=None, profile=None) -> ExecutionEngine:
    """The engine an experiment should use.

    Accepts the historical calling conventions of the ``run_*`` experiment
    functions: an explicit engine wins, then a legacy
    :class:`~repro.experiments.runner.ExperimentRunner` (whose engine is
    reused, preserving its caches), then a fresh engine for ``profile``.

    The ``runner=`` convention is deprecated (one release): pass the
    runner's ``.engine`` — or go through :func:`repro.engine.run.run_cells`,
    the unified entrypoint every new caller should use.
    """
    if engine is not None:
        return engine
    if runner is not None:
        import warnings

        warnings.warn(
            "resolve_engine(runner=...) is deprecated and will be removed "
            "in the next release; pass engine=runner.engine, or use "
            "repro.engine.run.run_cells",
            DeprecationWarning,
            stacklevel=3,
        )
        return runner.engine
    return ExecutionEngine(profile=profile)
