"""Write buffers in front of the caches.

Stores retire into a write buffer; the buffer drains one entry every
``drain_interval`` cycles.  When the buffer is full the store (and therefore
commit) must stall — that back-pressure is the only effect the pipeline
needs, so the model tracks occupancy rather than data.
"""

from __future__ import annotations


class WriteBuffer:
    """Occupancy model of a write buffer."""

    def __init__(self, entries: int, drain_interval: int = 4) -> None:
        if entries < 1:
            raise ValueError("write buffer needs at least one entry")
        self.entries = entries
        self.drain_interval = drain_interval
        self._occupancy = 0
        self._last_drain_cycle = 0
        self.full_stalls = 0
        self.stores_accepted = 0

    def tick(self, now: int) -> None:
        """Drain entries according to elapsed cycles."""
        if self._occupancy == 0:
            self._last_drain_cycle = now
            return
        elapsed = now - self._last_drain_cycle
        drained = elapsed // self.drain_interval
        if drained > 0:
            self._occupancy = max(0, self._occupancy - drained)
            self._last_drain_cycle = now

    def try_insert(self, now: int) -> bool:
        """Insert a store; returns ``False`` (stall) when the buffer is full."""
        self.tick(now)
        if self._occupancy >= self.entries:
            self.full_stalls += 1
            return False
        self._occupancy += 1
        self.stores_accepted += 1
        return True

    @property
    def occupancy(self) -> int:
        return self._occupancy
