"""Set-associative cache with LRU replacement and a simple MSHR model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    block_bytes: int
    hit_latency: int
    primary_misses: int = 12
    secondary_misses: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"associativity*block ({self.associativity}*{self.block_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    mshr_stalls: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    latency: int
    #: Block-aligned address forwarded to the next level on a miss.
    fill_address: Optional[int] = None


class Cache:
    """A set-associative, write-allocate, LRU cache.

    The model tracks tag state exactly (so hit/miss sequences are realistic
    for the strided and pointer-chasing workloads) but approximates the MSHR
    behaviour: at most ``primary_misses`` distinct outstanding blocks are
    tracked per *cycle window*; additional misses in the same window are
    charged a small extra stall.  This is sufficient for the accuracy and
    relative-IPC experiments, which are not memory-bound.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # sets -> list of tags in LRU order (index 0 = least recently used).
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        # Outstanding miss bookkeeping: block address -> completion cycle.
        self._outstanding: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _index_and_tag(self, address: int) -> tuple:
        block = address // self.config.block_bytes
        return block % self.config.num_sets, block

    def lookup(self, address: int) -> bool:
        """Check whether ``address`` currently hits, without side effects."""
        set_index, tag = self._index_and_tag(address)
        return tag in self._sets[set_index]

    def access(self, address: int, now: int = 0, is_write: bool = False) -> AccessResult:
        """Access ``address`` at cycle ``now``; update tags and statistics."""
        cfg = self.config
        set_index, tag = self._index_and_tag(address)
        ways = self._sets[set_index]
        self.stats.accesses += 1

        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return AccessResult(hit=True, latency=cfg.hit_latency)

        self.stats.misses += 1
        # Secondary miss to an already outstanding block: merge with it.
        completion = self._outstanding.get(tag)
        extra = 0
        if completion is None:
            self._expire_outstanding(now)
            if len(self._outstanding) >= cfg.primary_misses:
                # MSHR full: charge a small structural stall.
                self.stats.mshr_stalls += 1
                extra = 2
        self._fill(set_index, tag)
        return AccessResult(
            hit=False,
            latency=cfg.hit_latency + extra,
            fill_address=tag * cfg.block_bytes,
        )

    def note_outstanding(self, address: int, completion_cycle: int) -> None:
        """Record that the block containing ``address`` is being filled."""
        _, tag = self._index_and_tag(address)
        self._outstanding[tag] = completion_cycle

    def _expire_outstanding(self, now: int) -> None:
        finished = [tag for tag, cycle in self._outstanding.items() if cycle <= now]
        for tag in finished:
            del self._outstanding[tag]

    def _fill(self, set_index: int, tag: int) -> None:
        ways = self._sets[set_index]
        if len(ways) >= self.config.associativity:
            ways.pop(0)
            self.stats.evictions += 1
        ways.append(tag)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate all contents (used between benchmark runs)."""
        self._sets = [[] for _ in range(self.config.num_sets)]
        self._outstanding.clear()

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"<Cache {cfg.name} {cfg.size_bytes // 1024}KB {cfg.associativity}-way "
            f"{cfg.block_bytes}B blocks, {self.stats.accesses} accesses>"
        )
