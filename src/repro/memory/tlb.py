"""Translation lookaside buffers (512 entries, 10-cycle miss penalty)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TLBConfig:
    name: str
    entries: int = 512
    page_bytes: int = 8192
    miss_penalty: int = 10


class TLB:
    """A fully-associative TLB with LRU replacement."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._pages: List[int] = []
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> int:
        """Translate ``address``; return the latency penalty (0 on a hit)."""
        page = address // self.config.page_bytes
        self.accesses += 1
        if page in self._pages:
            self._pages.remove(page)
            self._pages.append(page)
            return 0
        self.misses += 1
        if len(self._pages) >= self.config.entries:
            self._pages.pop(0)
        self._pages.append(page)
        return self.config.miss_penalty

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def flush(self) -> None:
        self._pages = []
