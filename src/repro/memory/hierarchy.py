"""The full memory hierarchy wired together (Table 1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.main_memory import MainMemory
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.write_buffer import WriteBuffer


@dataclass
class MemoryHierarchyConfig:
    """Configuration of all levels; defaults reproduce Table 1."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D",
            size_bytes=64 * 1024,
            associativity=4,
            block_bytes=64,
            hit_latency=2,
            primary_misses=12,
            secondary_misses=4,
        )
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1I",
            size_bytes=32 * 1024,
            associativity=4,
            block_bytes=64,
            hit_latency=1,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2",
            size_bytes=1024 * 1024,
            associativity=16,
            block_bytes=128,
            hit_latency=8,
            primary_misses=12,
        )
    )
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(name="DTLB"))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(name="ITLB"))
    l1d_write_buffer_entries: int = 16
    l2_write_buffer_entries: int = 8
    memory_latency: int = 120


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory, with TLBs and write buffers."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config or MemoryHierarchyConfig()
        cfg = self.config
        self.l1d = Cache(cfg.l1d)
        self.l1i = Cache(cfg.l1i)
        self.l2 = Cache(cfg.l2)
        self.dtlb = TLB(cfg.dtlb)
        self.itlb = TLB(cfg.itlb)
        self.l1d_write_buffer = WriteBuffer(cfg.l1d_write_buffer_entries)
        self.l2_write_buffer = WriteBuffer(cfg.l2_write_buffer_entries)
        self.memory = MainMemory(cfg.memory_latency)

    # ------------------------------------------------------------------
    def load_latency(self, address: int, now: int = 0) -> int:
        """Latency of a data load at ``address`` issued at cycle ``now``."""
        latency = self.dtlb.access(address)
        l1 = self.l1d.access(address, now)
        latency += l1.latency
        if l1.hit:
            return latency
        l2 = self.l2.access(address, now)
        latency += l2.latency
        if l2.hit:
            self.l1d.note_outstanding(address, now + latency)
            return latency
        latency += self.memory.access(address)
        self.l1d.note_outstanding(address, now + latency)
        self.l2.note_outstanding(address, now + latency)
        return latency

    def store_latency(self, address: int, now: int = 0) -> int:
        """Latency/stall charged to a store retiring at cycle ``now``."""
        latency = self.dtlb.access(address)
        # Stores allocate in L1D and sit in the write buffer; a full buffer
        # stalls retirement for one drain interval.
        self.l1d.access(address, now, is_write=True)
        if not self.l1d_write_buffer.try_insert(now):
            latency += self.l1d_write_buffer.drain_interval
        return latency

    def fetch_latency(self, address: int, now: int = 0) -> int:
        """Latency of an instruction fetch from ``address``."""
        latency = self.itlb.access(address)
        l1 = self.l1i.access(address, now)
        latency += l1.latency
        if l1.hit:
            return latency
        l2 = self.l2.access(address, now)
        latency += l2.latency
        if l2.hit:
            return latency
        latency += self.memory.access(address)
        return latency

    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by the metrics reporting."""
        return {
            "l1d_miss_rate": self.l1d.stats.miss_rate,
            "l1i_miss_rate": self.l1i.stats.miss_rate,
            "l2_miss_rate": self.l2.stats.miss_rate,
            "dtlb_miss_rate": self.dtlb.miss_rate,
            "itlb_miss_rate": self.itlb.miss_rate,
            "l1d_accesses": float(self.l1d.stats.accesses),
            "l1i_accesses": float(self.l1i.stats.accesses),
            "l2_accesses": float(self.l2.stats.accesses),
        }

    def flush(self) -> None:
        for cache in (self.l1d, self.l1i, self.l2):
            cache.flush()
        self.dtlb.flush()
        self.itlb.flush()
