"""Main memory latency model (120 cycles, Table 1)."""

from __future__ import annotations


class MainMemory:
    """A flat-latency main memory."""

    def __init__(self, latency: int = 120) -> None:
        self.latency = latency
        self.accesses = 0

    def access(self, address: int) -> int:
        """Return the access latency for ``address``."""
        self.accesses += 1
        return self.latency
