"""Memory hierarchy: caches, TLBs, write buffers and main memory.

Models the hierarchy of Table 1:

* L1D: 64 KB, 4-way, 64 B blocks, 2-cycle latency, non-blocking
  (12 primary misses, 4 secondary), 16 write-buffer entries;
* L1I: 32 KB, 4-way, 64 B blocks, 1-cycle latency;
* L2 unified: 1 MB, 16-way, 128 B blocks, 8-cycle latency, non-blocking
  (12 primary misses), 8 write-buffer entries;
* DTLB / ITLB: 512 entries, 10-cycle miss penalty;
* main memory: 120-cycle latency.

The hierarchy returns *latencies*; the out-of-order pipeline charges them to
loads, stores and instruction fetches.
"""

from repro.memory.cache import Cache, CacheConfig, CacheStats, AccessResult
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.write_buffer import WriteBuffer
from repro.memory.main_memory import MainMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "AccessResult",
    "TLB",
    "TLBConfig",
    "WriteBuffer",
    "MainMemory",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
]
