"""Command-line interface: ``python -m repro <command>``.

Commands:

``table1``
    Print the simulated machine configuration (Table 1).
``figure5`` / ``figure6`` / ``idealized`` / ``ablations`` / ``ipc``
    Regenerate the corresponding experiment and print its report.
``simulate BENCHMARK``
    Run one benchmark under one scheme and print the headline metrics.
``list``
    List the available benchmarks.

Common options: ``--instructions N`` (per-benchmark budget),
``--benchmarks a,b,c`` (subset of the suite), and for ``simulate``:
``--scheme``, ``--flavour``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.ablations import run_history_ablation, run_pvt_ablation
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.idealized import run_idealized_study
from repro.experiments.runner import BASELINE, IF_CONVERTED, ExperimentRunner
from repro.experiments.selective_ipc import run_selective_ipc
from repro.experiments.setup import (
    ExperimentProfile,
    make_conventional_scheme,
    make_peppa_scheme,
    make_predicate_scheme,
    paper_table1,
)
from repro.workloads.spec_suite import workload_names

_SCHEME_FACTORIES = {
    "conventional": make_conventional_scheme,
    "pep-pa": make_peppa_scheme,
    "predicate": make_predicate_scheme,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving Branch Prediction and Predicated "
        "Execution in Out-of-Order Processors' (HPCA 2007)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=20_000,
        help="fetched-instruction budget per benchmark per scheme (default: 20000)",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default="",
        help="comma-separated benchmark subset (default: the full 22-program suite)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="print the Table 1 machine configuration")
    subparsers.add_parser("list", help="list the available benchmarks")
    subparsers.add_parser("figure5", help="Figure 5: non-if-converted accuracy")
    subparsers.add_parser("figure6", help="Figure 6a/6b: if-converted accuracy")
    idealized = subparsers.add_parser("idealized", help="idealized-predictor study")
    idealized.add_argument(
        "--flavour",
        choices=[BASELINE, IF_CONVERTED],
        default=BASELINE,
        help="binary flavour to evaluate",
    )
    subparsers.add_parser("ablations", help="PVT and history ablations")
    subparsers.add_parser("ipc", help="selective predicated-execution IPC comparison")

    simulate = subparsers.add_parser("simulate", help="simulate one benchmark")
    simulate.add_argument("benchmark", help="benchmark name (see 'list')")
    simulate.add_argument(
        "--scheme",
        choices=sorted(_SCHEME_FACTORIES),
        default="predicate",
        help="branch-handling scheme (default: predicate)",
    )
    simulate.add_argument(
        "--flavour",
        choices=[BASELINE, IF_CONVERTED],
        default=IF_CONVERTED,
        help="binary flavour (default: if-converted)",
    )
    return parser


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    benchmarks: Optional[List[str]] = None
    if args.benchmarks:
        benchmarks = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    profile = ExperimentProfile(
        name="cli",
        instructions_per_benchmark=args.instructions,
        benchmarks=benchmarks,
        profile_budget=min(args.instructions, 20_000),
    )
    return ExperimentRunner(profile)


def _command_table1(_args: argparse.Namespace) -> str:
    return "\n".join(f"{key:28s} {value}" for key, value in paper_table1().items())


def _command_list(_args: argparse.Namespace) -> str:
    return "\n".join(workload_names())


def _command_figure5(args: argparse.Namespace) -> str:
    return run_figure5(runner=_runner(args)).render()


def _command_figure6(args: argparse.Namespace) -> str:
    return run_figure6(runner=_runner(args)).render()


def _command_idealized(args: argparse.Namespace) -> str:
    return run_idealized_study(args.flavour, runner=_runner(args)).render()


def _command_ablations(args: argparse.Namespace) -> str:
    runner = _runner(args)
    return "\n\n".join(
        [run_pvt_ablation(runner=runner).render(), run_history_ablation(runner=runner).render()]
    )


def _command_ipc(args: argparse.Namespace) -> str:
    return run_selective_ipc(runner=_runner(args)).render()


def _command_simulate(args: argparse.Namespace) -> str:
    runner = _runner(args)
    if args.benchmark not in workload_names():
        raise SystemExit(f"unknown benchmark {args.benchmark!r}; see 'repro list'")
    run = runner.run_scheme(args.benchmark, args.flavour, _SCHEME_FACTORIES[args.scheme])
    metrics = run.result.metrics
    accuracy = run.result.accuracy
    lines = [
        f"benchmark            {args.benchmark} ({args.flavour})",
        f"scheme               {run.result.scheme_name}",
        f"instructions         {metrics.committed_instructions}",
        f"cycles               {metrics.cycles}",
        f"IPC                  {metrics.ipc:.3f}",
        f"conditional branches {accuracy.branches}",
        f"misprediction rate   {100 * accuracy.misprediction_rate:.2f}%",
        f"early-resolved       {100 * accuracy.early_resolved_fraction:.1f}%",
        f"cancelled at rename  {metrics.cancelled_at_rename}",
        f"predicate flushes    {metrics.predicate_flushes}",
    ]
    return "\n".join(lines)


_COMMANDS = {
    "table1": _command_table1,
    "list": _command_list,
    "figure5": _command_figure5,
    "figure6": _command_figure6,
    "idealized": _command_idealized,
    "ablations": _command_ablations,
    "ipc": _command_ipc,
    "simulate": _command_simulate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    args = build_parser().parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
