"""Command-line interface: ``python -m repro <command>``.

Commands:

``table1``
    Print the simulated machine configuration (Table 1).
``figure5`` / ``figure6`` / ``idealized`` / ``ablations`` / ``ipc``
    Regenerate the corresponding experiment and print its report.
``all``
    Run every experiment through one shared, deduplicated engine pass and
    write the rendered reports under ``results/`` (see ``--output-dir``).
``simulate BENCHMARK``
    Run one benchmark under one scheme and print the headline metrics.
``bench``
    Measure simulator and trace-layer throughput over the standardized cell
    suite, write a machine-readable ``BENCH_<rev>.json`` and (with
    ``--check``) gate against a committed baseline.  ``--filter SUBSTRING``
    runs a subset of cells; ``--history DIR`` appends the run to the
    performance trajectory under ``benchmarks/history/``.
``sweep SCENARIO``
    Design-space exploration: run a scenario file's machine-configuration
    grid (built-in: ``rob-scaling``, ``fetch-width``, ``mispredict-penalty``,
    ``predictor-budget``; or a ``.toml``/``.json`` path) and render
    sensitivity tables and ASCII plots; ``sweep --list`` shows the built-in
    scenarios and the sweepable machine parameters.
``workloads list`` / ``workloads describe`` / ``workloads validate``
    Inspect the workload registry: the 22 built-in synthetic programs, the
    shipped library of trait-spec benchmarks, and user workloads declared
    as ``.toml``/``.json`` spec files or ``.trace`` branch-outcome streams
    (see ``docs/workloads.md``).
``cache stats`` / ``cache clear`` / ``cache path``
    Inspect or clear the persistent artifact cache (``stats`` reports
    per-kind entry counts, bytes and last-hit ages).
``serve``
    Run the experiment service: an HTTP+JSON job daemon over the engine
    (``--host``/``--port``, ``--workers`` concurrent jobs,
    ``--max-store-bytes`` size-gated LRU eviction); see ``docs/serve.md``.
``submit SCENARIO``
    Submit a job to a running daemon (``--url``), wait for it and print
    the rendered result; accepts built-in scenario names, scenario files,
    or ``.json`` job documents with ``cells``.
``list``
    List the available benchmarks (registry names, one per line).

Common options: ``--instructions N`` (per-benchmark budget),
``--benchmarks a,b,c`` (registry names and/or workload file paths),
``--jobs N`` (parallel worker processes), ``--cache-dir PATH`` /
``--no-cache`` (persistent artifact store; defaults to
``$REPRO_CACHE_DIR`` or ``.repro-cache``), ``--checkpoint-every ROWS``
(periodic resume checkpoints through the store; see
``docs/internals/traces.md``), and for ``simulate``: ``--scheme``,
``--flavour``, ``--sampling SPEC`` (sampled simulation).

The full command reference, with expected outputs, lives in
``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.api import (
    ArtifactStore,
    BASELINE,
    ExecutionEngine,
    IF_CONVERTED,
    SchemeSpec,
    default_cache_dir,
)
from repro.engine.store import KINDS
from repro.experiments.ablations import run_history_ablation, run_pvt_ablation
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.idealized import run_idealized_study
from repro.experiments.selective_ipc import run_selective_ipc
from repro.experiments.setup import SCHEME_FACTORIES, ExperimentProfile, paper_table1
from repro.experiments.suite import run_all, write_reports
from repro.workloads.registry import (
    UnknownWorkloadError,
    registry_names,
    resolve_workload,
)
from repro.workloads.trace_ingest import TraceIngestError
from repro.workloads.workload_spec import WorkloadSpecError

_SCHEME_SPECS = {kind: SchemeSpec.make(kind) for kind in SCHEME_FACTORIES}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving Branch Prediction and Predicated "
        "Execution in Out-of-Order Processors' (HPCA 2007)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="fetched-instruction budget per benchmark per scheme "
        "(default: 20000; sweep scenarios default to their declared budget)",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default="",
        help="comma-separated benchmarks: registry names and/or workload "
        "spec/trace file paths (default: the full 22-program suite)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent (benchmark, flavour) cells "
        "(default: 1 = serial)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="ROWS",
        help="write a resume checkpoint to the artifact cache every ROWS "
        "simulated branches, so a killed run restarts mid-trace "
        "(default: off; needs the cache)",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="stderr logging verbosity for the repro runtime "
        "(default: $REPRO_LOG_LEVEL or warning)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="print the Table 1 machine configuration")
    subparsers.add_parser("list", help="list the available benchmarks")
    subparsers.add_parser("figure5", help="Figure 5: non-if-converted accuracy")
    subparsers.add_parser("figure6", help="Figure 6a/6b: if-converted accuracy")
    idealized = subparsers.add_parser("idealized", help="idealized-predictor study")
    idealized.add_argument(
        "--flavour",
        choices=[BASELINE, IF_CONVERTED],
        default=BASELINE,
        help="binary flavour to evaluate",
    )
    subparsers.add_parser("ablations", help="PVT and history ablations")
    subparsers.add_parser("ipc", help="selective predicated-execution IPC comparison")

    everything = subparsers.add_parser(
        "all", help="run every experiment in one shared engine pass"
    )
    everything.add_argument(
        "--output-dir",
        type=str,
        default="results",
        help="directory the rendered reports are written to (default: results)",
    )

    bench = subparsers.add_parser(
        "bench", help="measure simulator throughput and gate regressions"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="run the quick cell suite at a reduced instruction budget (CI)",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="simulate each cell N times and keep the fastest (default: 1)",
    )
    bench.add_argument(
        "--filter",
        type=str,
        default=None,
        metavar="SUBSTRING",
        help="run only cells whose benchmark/flavour/scheme label contains "
        "SUBSTRING (e.g. 'predicate' or 'gzip/if-converted')",
    )
    bench.add_argument(
        "--history",
        type=str,
        default=None,
        metavar="DIR",
        help="append a one-line summary of this run to DIR/<suite>.jsonl "
        "(the perf trajectory, e.g. benchmarks/history)",
    )
    bench.add_argument(
        "--output",
        type=str,
        default=None,
        help="report path (default: BENCH_<rev>.json in the working directory)",
    )
    bench.add_argument(
        "--no-write",
        action="store_true",
        help="print the table without writing the JSON report",
    )
    bench.add_argument(
        "--check",
        type=str,
        default=None,
        metavar="BASELINE",
        help="compare against a baseline report and exit non-zero on regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated throughput regression for --check (default: 0.25)",
    )
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument(
        "--legacy",
        action="store_true",
        help="measure the reference (pre-optimization) implementations",
    )
    mode.add_argument(
        "--compare-opt",
        action="store_true",
        help="measure legacy and optimized implementations and print the speedup",
    )

    cache = subparsers.add_parser("cache", help="inspect or clear the artifact cache")
    cache.add_argument(
        "action",
        choices=["stats", "clear", "path", "quarantine"],
        help="stats: per-kind counts/sizes (quarantine included); clear: "
        "delete artifacts; path: print the cache directory; "
        "'quarantine clear': delete quarantined artifacts",
    )
    cache.add_argument(
        "subaction",
        nargs="?",
        choices=["clear"],
        default=None,
        help="with 'quarantine': clear deletes the quarantined artifacts",
    )
    cache.add_argument(
        "--kind",
        choices=sorted(KINDS),
        default=None,
        help="restrict 'clear' to one artifact kind",
    )

    sweep = subparsers.add_parser(
        "sweep", help="design-space exploration over machine configurations"
    )
    sweep.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="built-in scenario name or a .toml/.json scenario file path",
    )
    sweep.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list built-in scenarios and sweepable machine parameters",
    )
    # Also accepted *after* the subcommand (the natural place to type it).
    # SUPPRESS keeps an absent post-command flag from clobbering the global
    # --jobs value argparse already parsed into the namespace.
    sweep.add_argument(
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    sweep.add_argument(
        "--output-dir",
        type=str,
        default="results",
        help="directory the rendered report is written to (default: results)",
    )
    sweep.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing results/sweep_<name>.txt",
    )

    serve = subparsers.add_parser(
        "serve", help="run the experiment service (HTTP+JSON job daemon)"
    )
    serve.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="address to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="port to bind; 0 picks a free port (default: 8321)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent jobs the scheduler runs (default: 2)",
    )
    serve.add_argument(
        "--max-store-bytes",
        type=str,
        default=None,
        metavar="SIZE",
        help="evict least-recently-hit artifacts to keep the store under "
        "SIZE (bytes, or with a K/M/G suffix); default: unbounded",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail any job still running after SECONDS and release its "
        "coalescing claims (default: no deadline)",
    )
    serve.add_argument(
        "--journal",
        type=str,
        default=None,
        metavar="PATH",
        help="JSONL job journal for restart recovery (default: "
        "<cache-dir>/serve-journal.jsonl; 'none' disables)",
    )

    submit = subparsers.add_parser(
        "submit", help="submit a job to a running 'repro serve' daemon"
    )
    submit.add_argument(
        "target",
        help="built-in scenario name, a .toml/.json scenario file, or a "
        ".json job document with 'cells'",
    )
    submit.add_argument(
        "--url",
        type=str,
        default="http://127.0.0.1:8321",
        help="base URL of the daemon (default: http://127.0.0.1:8321)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting for the result",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds to wait for completion (default: 600)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="print raw per-cell counters as JSON instead of the table",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry idempotent polls this many times on connection errors "
        "(default: 0)",
    )
    submit.add_argument(
        "--retry-backoff",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="base backoff between poll retries, doubled per attempt "
        "(default: 0.2)",
    )

    workloads = subparsers.add_parser(
        "workloads", help="inspect the workload registry and validate spec files"
    )
    workloads.add_argument(
        "action",
        choices=["list", "describe", "validate"],
        help="list: every registry workload with provenance and traits; "
        "describe: one workload in full; validate: parse spec/trace files "
        "and report the first problem",
    )
    workloads.add_argument(
        "targets",
        nargs="*",
        metavar="WORKLOAD",
        help="registry names or spec/trace file paths ('describe' takes "
        "exactly one; 'validate' takes one or more)",
    )

    simulate = subparsers.add_parser("simulate", help="simulate one benchmark")
    simulate.add_argument(
        "benchmark", help="registry name or workload file path (see 'workloads list')"
    )
    simulate.add_argument(
        "--scheme",
        choices=sorted(_SCHEME_SPECS),
        default="predicate",
        help="branch-handling scheme (default: predicate)",
    )
    simulate.add_argument(
        "--flavour",
        choices=[BASELINE, IF_CONVERTED],
        default=IF_CONVERTED,
        help="binary flavour (default: if-converted)",
    )
    simulate.add_argument(
        "--sampling",
        type=str,
        default=None,
        metavar="SPEC",
        help="sampled simulation: 'interval[:window[:warmup]]' simulates "
        "every interval-th window of window branches after warmup "
        "warm-up branches (e.g. '4:4096:512'); the result is an "
        "approximation and is flagged as such",
    )
    return parser


def _store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    if args.no_cache:
        return None
    return ArtifactStore(default_cache_dir(args.cache_dir))


def _resolve_benchmark(name: str) -> None:
    """Validate one benchmark string against the workload registry.

    Exits with the registry's message — which lists the available names and
    suggests close matches for near-misses — instead of an argparse-less
    traceback from deep inside a worker's compile step.
    """
    try:
        resolve_workload(name)
    except (UnknownWorkloadError, WorkloadSpecError, TraceIngestError) as error:
        raise SystemExit(str(error)) from None


def _parse_benchmarks(args: argparse.Namespace) -> Optional[List[str]]:
    """The validated ``--benchmarks`` selection, or ``None`` when not given.

    Entries may be registry names (built-in or library) or workload
    spec/trace file paths.
    """
    if not args.benchmarks:
        return None
    benchmarks = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    if not benchmarks:
        return None
    for name in benchmarks:
        _resolve_benchmark(name)
    return benchmarks


def _checkpoint_every(args: argparse.Namespace) -> Optional[int]:
    """The validated ``--checkpoint-every`` value, or ``None`` when off."""
    value = getattr(args, "checkpoint_every", None)
    if value is None:
        return None
    if value < 1:
        raise SystemExit(f"--checkpoint-every must be a positive integer, got {value}")
    if args.no_cache:
        raise SystemExit(
            "--checkpoint-every needs the artifact cache (checkpoints are "
            "stored there); drop --no-cache"
        )
    return value


def _engine(args: argparse.Namespace) -> ExecutionEngine:
    benchmarks = _parse_benchmarks(args)
    instructions = args.instructions if args.instructions is not None else 20_000
    profile = ExperimentProfile(
        name="cli",
        instructions_per_benchmark=instructions,
        benchmarks=benchmarks,
        profile_budget=min(instructions, 20_000),
    )
    return ExecutionEngine(
        profile,
        store=_store(args),
        jobs=args.jobs,
        checkpoint_every=_checkpoint_every(args),
    )


def _command_table1(_args: argparse.Namespace) -> str:
    return "\n".join(f"{key:28s} {value}" for key, value in paper_table1().items())


def _command_list(_args: argparse.Namespace) -> str:
    return "\n".join(registry_names())


def _command_figure5(args: argparse.Namespace) -> str:
    return run_figure5(engine=_engine(args)).render()


def _command_figure6(args: argparse.Namespace) -> str:
    return run_figure6(engine=_engine(args)).render()


def _command_idealized(args: argparse.Namespace) -> str:
    return run_idealized_study(args.flavour, engine=_engine(args)).render()


def _command_ablations(args: argparse.Namespace) -> str:
    engine = _engine(args)
    return "\n\n".join(
        [run_pvt_ablation(engine=engine).render(), run_history_ablation(engine=engine).render()]
    )


def _command_ipc(args: argparse.Namespace) -> str:
    return run_selective_ipc(engine=_engine(args)).render()


def _command_all(args: argparse.Namespace) -> str:
    engine = _engine(args)
    suite = run_all(engine=engine)
    written = write_reports(suite, args.output_dir)
    lines = [suite.render(), "", f"wrote {len(written)} reports:"]
    lines.extend(f"  {path}" for path in written)
    return "\n".join(lines)


def _command_bench(args: argparse.Namespace) -> str:
    from repro.perf import bench as bench_mod
    from repro.perf.compare import compare_reports
    from repro.perf.report import render_speedup, render_table

    if args.check and args.legacy:
        # The baseline is measured with the optimized implementations; gating
        # a deliberately slower legacy run against it would always fail.
        raise SystemExit("--check cannot be combined with --legacy")
    if args.check and args.filter:
        # The baseline aggregate covers the whole suite; comparing a cell
        # subset against it would spuriously fail (slow cells) or mask real
        # regressions (fast cells).
        raise SystemExit("--check cannot be combined with --filter")
    if args.filter:
        # Validate eagerly so an unmatched filter exits cleanly; internal
        # errors during measurement keep their tracebacks.
        suite = bench_mod.QUICK_CELLS if args.quick else bench_mod.FULL_CELLS
        try:
            bench_mod.filter_cells(suite, args.filter)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    lines = []
    if args.compare_opt:
        legacy = bench_mod.run_bench(
            quick=args.quick,
            repeats=args.repeat,
            optimized=False,
            cell_filter=args.filter,
        )
        report = bench_mod.run_bench(
            quick=args.quick,
            repeats=args.repeat,
            optimized=True,
            cell_filter=args.filter,
        )
        lines.extend([render_table(report), "", "legacy vs optimized:"])
        lines.append(render_speedup(legacy, report))
    else:
        report = bench_mod.run_bench(
            quick=args.quick,
            repeats=args.repeat,
            optimized=False if args.legacy else None,
            cell_filter=args.filter,
        )
        lines.append(render_table(report))
    if not args.no_write:
        path = args.output or bench_mod.default_output_path(report)
        bench_mod.write_report(report, path)
        lines.append(f"wrote {path}")
    if args.history:
        lines.append(f"appended history to {bench_mod.append_history(report, args.history)}")
    if args.check:
        baseline = bench_mod.load_report(args.check)
        ok, verdict = compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        lines.append("")
        lines.extend(verdict)
        if not ok:
            raise SystemExit("\n".join(lines))
    return "\n".join(lines)


def _command_sweep(args: argparse.Namespace) -> str:
    import dataclasses

    from repro.sweep import (
        ScenarioError,
        builtin_scenario_names,
        load_scenario,
        render_sweep,
        run_sweep,
    )
    from repro.sweep.scenario import overridable_parameters

    if args.list_scenarios or args.scenario is None:
        lines = ["built-in scenarios:"]
        lines.extend(f"  {name}" for name in builtin_scenario_names())
        lines.append("")
        lines.append("sweepable machine parameters (Table 1 defaults):")
        lines.extend(
            f"  {name:32s} {default}"
            for name, default in sorted(overridable_parameters().items())
        )
        lines.append("")
        lines.append("run one with: repro sweep <scenario> [--jobs N] [--output-dir DIR]")
        return "\n".join(lines)

    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as error:
        raise SystemExit(str(error)) from None

    # Global --benchmarks / --instructions override the scenario's choices.
    requested = _parse_benchmarks(args)
    if requested:
        scenario = dataclasses.replace(scenario, benchmarks=tuple(requested))
    if args.instructions is not None:
        # Mirror the scenario parser's own budget validation: a zero or
        # negative override would "succeed" with an all-zero report.
        if args.instructions < 1:
            raise SystemExit(
                f"--instructions must be a positive integer, got {args.instructions}"
            )
        scenario = dataclasses.replace(scenario, instructions=args.instructions)

    from repro.sweep.runner import sweep_profile

    engine = ExecutionEngine(
        sweep_profile(scenario),
        store=_store(args),
        jobs=args.jobs,
        checkpoint_every=_checkpoint_every(args),
    )
    run = run_sweep(scenario, engine=engine)
    report = render_sweep(run)
    if args.no_write:
        return report
    os.makedirs(args.output_dir, exist_ok=True)
    filename = f"sweep_{scenario.name.replace('-', '_')}.txt"
    path = os.path.join(args.output_dir, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    return f"{report}\n\nwrote {path}"


def _describe_workload(definition) -> str:
    """The full ``workloads describe`` rendering of one definition."""
    traits = definition.traits
    lines = [
        f"workload             {definition.display_name}",
        f"origin               {definition.origin} ({definition.source})",
        f"fingerprint          {definition.fingerprint}",
        f"category             {traits.category}",
        f"seed                 {traits.seed}",
        f"array length         {traits.array_length}",
        f"outer iterations     {traits.outer_iterations}",
        f"filler (alu/fp)      {traits.filler_alu}/{traits.filler_fp}",
        f"inner-loop trips     {traits.inner_loop_trips}",
        f"pointer chase        {traits.pointer_chase}",
    ]
    for index, region in enumerate(traits.hard_regions):
        nested = ", nested" if region.nested else ""
        lines.append(
            f"hard region {index}        bias={region.bias:.2f} "
            f"body={region.body_size} kind={region.kind.value}{nested}"
        )
    for index, branch in enumerate(traits.correlated_branches):
        early = "early" if branch.early_compare else "adjacent"
        lines.append(
            f"correlated branch {index}  {branch.op}{list(branch.sources)} "
            f"lag={branch.lag} noise={branch.noise:.2f} compare={early}"
        )
    for index, branch in enumerate(traits.easy_branches):
        early = "early" if branch.early_compare else "adjacent"
        lines.append(
            f"easy branch {index}        bias={branch.bias:.2f} "
            f"body={branch.body_size} compare={early}"
        )
    return "\n".join(lines)


def _command_workloads(args: argparse.Namespace) -> str:
    if args.action == "list":
        if args.targets:
            raise SystemExit("'workloads list' takes no arguments")
        lines = [
            f"{'name':16s} {'origin':9s} {'cat':4s} {'hard':>4s} {'corr':>4s} "
            f"{'easy':>4s} fingerprint"
        ]
        for name in registry_names():
            definition = resolve_workload(name)
            traits = definition.traits
            lines.append(
                f"{name:16s} {definition.origin:9s} {traits.category:4s} "
                f"{len(traits.hard_regions):4d} {len(traits.correlated_branches):4d} "
                f"{len(traits.easy_branches):4d} {definition.fingerprint[:12]}"
            )
        lines.append("")
        lines.append(
            "user workloads: pass a .toml/.json trait-spec or .trace "
            "outcome-stream path anywhere a benchmark name is accepted "
            "(docs/workloads.md documents both formats)"
        )
        return "\n".join(lines)
    if args.action == "describe":
        if len(args.targets) != 1:
            raise SystemExit("'workloads describe' takes exactly one workload")
        try:
            definition = resolve_workload(args.targets[0])
        except (UnknownWorkloadError, WorkloadSpecError, TraceIngestError) as error:
            raise SystemExit(str(error)) from None
        return _describe_workload(definition)
    # validate: report every file's verdict, exit non-zero on the first bad one.
    if not args.targets:
        raise SystemExit("'workloads validate' needs at least one spec/trace path")
    lines = []
    failures = 0
    for target in args.targets:
        try:
            definition = resolve_workload(target)
        except (UnknownWorkloadError, WorkloadSpecError, TraceIngestError) as error:
            failures += 1
            lines.append(f"FAIL {target}: {error}")
        else:
            lines.append(
                f"ok   {target}: {definition.traits.describe()} "
                f"(fingerprint {definition.fingerprint[:12]})"
            )
    if failures:
        raise SystemExit("\n".join(lines))
    return "\n".join(lines)


def _command_cache(args: argparse.Namespace) -> str:
    store = ArtifactStore(default_cache_dir(args.cache_dir))
    if args.subaction and args.action != "quarantine":
        raise SystemExit(f"'cache {args.action}' takes no subaction")
    if args.action == "path":
        store.ensure_root()
        return store.root
    if args.action == "clear":
        removed = store.clear(args.kind)
        scope = args.kind or "all kinds"
        return f"removed {removed} artifacts ({scope}) from {store.root}"
    if args.action == "quarantine":
        if args.subaction == "clear":
            removed = store.clear_quarantine()
            return f"removed {removed} quarantined artifacts from {store.root}"
        entries = store.quarantine_entries()
        if not entries:
            return f"no quarantined artifacts in {store.root}"
        lines = [f"quarantined artifacts in {store.root}:"]
        for entry in entries:
            lines.append(
                f"  {entry.get('kind', '?'):10s} {str(entry.get('key', '?'))[:16]:16s} "
                f"{entry.get('quarantine_reason', 'unknown reason')}"
            )
        lines.append("run 'repro cache quarantine clear' to delete them")
        return "\n".join(lines)
    import time as time_mod

    report = store.usage()
    now = time_mod.time()

    def _age(timestamp) -> str:
        if timestamp is None:
            return "-"
        seconds = max(0.0, now - timestamp)
        if seconds < 120:
            return f"{seconds:.0f}s ago"
        if seconds < 7200:
            return f"{seconds / 60:.0f}m ago"
        return f"{seconds / 3600:.1f}h ago"

    lines = [
        f"artifact cache at {store.root}",
        f"  {'kind':10s} {'entries':>7s} {'size':>12s}  last hit (oldest / newest)",
    ]
    for kind in KINDS:
        entry = report[kind]
        lines.append(
            f"  {kind:10s} {entry['count']:5d} artifacts  {entry['bytes'] / 1024:8.1f} KiB"
            f"  {_age(entry['oldest_hit'])} / {_age(entry['newest_hit'])}"
        )
    total = report["total"]
    lines.append(
        f"  {'total':10s} {total['count']:5d} artifacts  {total['bytes'] / 1024:8.1f} KiB"
    )
    quarantine = report["quarantine"]
    if quarantine["count"]:
        lines.append(
            f"  {'quarantine':10s} {quarantine['count']:5d} artifacts  "
            f"{quarantine['bytes'] / 1024:8.1f} KiB"
            "  (damaged; 'repro cache quarantine' to inspect)"
        )
    return "\n".join(lines)


def _parse_size(raw: Optional[str]) -> Optional[int]:
    """Parse a ``--max-store-bytes`` value: plain bytes or K/M/G suffixed."""
    if raw is None:
        return None
    text = raw.strip().upper()
    multiplier = 1
    for suffix, scale in (("K", 1024), ("M", 1024**2), ("G", 1024**3)):
        if text.endswith(suffix):
            text, multiplier = text[: -len(suffix)], scale
            break
    try:
        value = int(text) * multiplier
    except ValueError:
        raise SystemExit(
            f"--max-store-bytes must be an integer with optional K/M/G suffix, got {raw!r}"
        ) from None
    if value < 1:
        raise SystemExit(f"--max-store-bytes must be positive, got {raw!r}")
    return value


def _command_serve(args: argparse.Namespace) -> str:
    from repro.serve import ExperimentService, make_server, serve_until_shutdown

    if args.no_cache:
        raise SystemExit(
            "'serve' needs the artifact store (coalescing and cross-job "
            "deduplication live there); drop --no-cache"
        )
    store = ArtifactStore(default_cache_dir(args.cache_dir))
    journal = None
    if args.journal != "none":
        from repro.serve.service import JobJournal

        journal = JobJournal(
            args.journal or os.path.join(store.root, "serve-journal.jsonl")
        )
    if args.job_timeout is not None and args.job_timeout <= 0:
        raise SystemExit(f"--job-timeout must be positive, got {args.job_timeout}")
    service = ExperimentService(
        store,
        jobs=args.jobs,
        workers=args.workers,
        max_store_bytes=_parse_size(args.max_store_bytes),
        default_instructions=args.instructions,
        job_timeout=args.job_timeout,
        journal=journal,
        checkpoint_every=_checkpoint_every(args),
    )
    # Start the workers up front: jobs re-queued from the journal must run
    # even if no new submission ever arrives.
    service.start()
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # One parseable line before blocking: smoke scripts read the bound port.
    print(f"repro serve listening on http://{host}:{port} (v1)", flush=True)
    serve_until_shutdown(server)
    return "repro serve: shut down cleanly"


def _command_submit(args: argparse.Namespace) -> str:
    import json as json_mod

    from repro.client import ServeClient, ServeError

    document = None
    if args.target.endswith(".json") and os.path.exists(args.target):
        with open(args.target, "r", encoding="utf-8") as handle:
            try:
                loaded = json_mod.load(handle)
            except ValueError as error:
                raise SystemExit(f"{args.target}: invalid JSON: {error}") from None
        if isinstance(loaded, dict) and ("cells" in loaded or "scenario" in loaded):
            document = loaded
    if document is None:
        # Scenario by name or file path (resolved by the daemon).
        document = {"scenario": args.target}
    if args.instructions is not None:
        document["instructions"] = args.instructions

    if args.retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {args.retries}")
    client = ServeClient(
        args.url, retries=args.retries, retry_backoff=args.retry_backoff
    )
    try:
        job = client.submit(document)
        if args.no_wait:
            return f"submitted job {job['id']} ({job['title']}) to {args.url}"
        snapshot = client.wait(job["id"], timeout=args.timeout)
        if snapshot["state"] != "done":
            raise SystemExit(
                f"job {job['id']} {snapshot['state']}: {snapshot.get('error')}"
            )
        result = client.result(job["id"], format="json" if args.json_output else "table")
    except ServeError as error:
        raise SystemExit(str(error)) from None
    stats = snapshot["stats"] or {}
    footer = (
        f"job {job['id']}: {snapshot['state']} — "
        f"{stats.get('simulations_run', 0)} simulated, "
        f"{stats.get('results_loaded', 0)} from cache, "
        f"{snapshot['coalesced_keys']} coalesced"
    )
    if args.json_output:
        return json_mod.dumps(result, indent=2, sort_keys=True) + "\n" + footer
    return f"{result}\n\n{footer}"


def _command_simulate(args: argparse.Namespace) -> str:
    sampling = None
    if args.sampling is not None:
        from repro.pipeline.windowed import SamplingSpec

        try:
            sampling = SamplingSpec.parse(args.sampling)
        except ValueError as error:
            raise SystemExit(f"--sampling: {error}") from None
    engine = _engine(args)
    _resolve_benchmark(args.benchmark)
    result = engine.simulate(
        args.benchmark, args.flavour, _SCHEME_SPECS[args.scheme], sampling=sampling
    )
    metrics = result.metrics
    accuracy = result.accuracy
    lines = [
        f"benchmark            {args.benchmark} ({args.flavour})",
        f"scheme               {result.scheme_name}",
        f"instructions         {metrics.committed_instructions}",
        f"cycles               {metrics.cycles}",
        f"IPC                  {metrics.ipc:.3f}",
        f"conditional branches {accuracy.branches}",
        f"misprediction rate   {100 * accuracy.misprediction_rate:.2f}%",
        f"early-resolved       {100 * accuracy.early_resolved_fraction:.1f}%",
        f"cancelled at rename  {metrics.cancelled_at_rename}",
        f"predicate flushes    {metrics.predicate_flushes}",
    ]
    if getattr(result, "sampling", None) is not None:
        lines.insert(
            2,
            f"sampling             SAMPLED — {result.sampling.describe()}; "
            "numbers approximate a full simulation",
        )
    return "\n".join(lines)


_COMMANDS = {
    "table1": _command_table1,
    "list": _command_list,
    "figure5": _command_figure5,
    "figure6": _command_figure6,
    "idealized": _command_idealized,
    "ablations": _command_ablations,
    "ipc": _command_ipc,
    "all": _command_all,
    "bench": _command_bench,
    "sweep": _command_sweep,
    "workloads": _command_workloads,
    "cache": _command_cache,
    "serve": _command_serve,
    "submit": _command_submit,
    "simulate": _command_simulate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    args = build_parser().parse_args(argv)
    from repro.log import configure_logging

    configure_logging(args.log_level)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
