"""A thin HTTP client for the ``repro serve`` experiment daemon.

:class:`ServeClient` wraps the versioned JSON API in plain method calls —
:meth:`~ServeClient.submit` a scenario/cells document, poll
:meth:`~ServeClient.job`, block with :meth:`~ServeClient.wait`, fetch the
rendered :meth:`~ServeClient.result` — using only :mod:`urllib.request`,
so a client needs nothing beyond the standard library::

    from repro.client import ServeClient

    client = ServeClient("http://127.0.0.1:8321")
    job = client.submit({"scenario": "rob-scaling", "instructions": 5000})
    done = client.wait(job["id"])
    print(client.result(job["id"]))          # rendered table
    print(client.result(job["id"], format="json"))  # raw counters

API errors surface as :class:`ServeError` carrying the HTTP status and the
daemon's ``error`` message (e.g. a 400 for an invalid submission, a 409
for a result requested before the job finished).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.serve.service import DONE, FAILED

#: Terminal job states — :meth:`ServeClient.wait` returns on either.
_TERMINAL_STATES = (DONE, FAILED)


class ServeError(RuntimeError):
    """An error response from a ``repro serve`` daemon.

    Carries the HTTP ``status`` and the daemon's ``message`` so callers can
    branch on conflict-vs-bad-request without parsing strings.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"serve API error {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talk to a running ``repro serve`` daemon over HTTP+JSON."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        """``base_url`` like ``http://127.0.0.1:8321``; ``timeout`` per request."""
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
            except ValueError:
                message = raw.decode("utf-8", "replace")
            raise ServeError(error.code, message) from None
        except urllib.error.URLError as error:
            raise ServeError(0, f"cannot reach {url}: {error.reason}") from None
        if content_type.startswith("application/json"):
            return json.loads(body)
        return body.decode("utf-8")

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` — liveness probe."""
        return self._request("/v1/health")

    def submit(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/jobs`` — submit a scenario/cells document, return the job snapshot."""
        return self._request("/v1/jobs", payload=document)

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` — every job's status snapshot."""
        return self._request("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — one job's status, stats and timings."""
        return self._request(f"/v1/jobs/{job_id}")

    def result(self, job_id: str, format: str = "table") -> Any:
        """``GET /v1/jobs/<id>/result`` — rendered table (str) or raw counters (dict)."""
        return self._request(f"/v1/jobs/{job_id}/result?format={format}")

    def store_stats(self) -> Dict[str, Any]:
        """``GET /v1/store/stats`` — per-kind artifact counts/bytes and eviction info."""
        return self._request("/v1/store/stats")

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll_interval: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its snapshot.

        Raises :class:`ServeError` (status 0) if ``timeout`` seconds elapse
        first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in _TERMINAL_STATES:
                return snapshot
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    0, f"timed out waiting for job {job_id} (state: {snapshot['state']})"
                )
            time.sleep(poll_interval)
