"""A thin HTTP client for the ``repro serve`` experiment daemon.

:class:`ServeClient` wraps the versioned JSON API in plain method calls —
:meth:`~ServeClient.submit` a scenario/cells document, poll
:meth:`~ServeClient.job`, block with :meth:`~ServeClient.wait`, fetch the
rendered :meth:`~ServeClient.result` — using only :mod:`urllib.request`,
so a client needs nothing beyond the standard library::

    from repro.client import ServeClient

    client = ServeClient("http://127.0.0.1:8321")
    job = client.submit({"scenario": "rob-scaling", "instructions": 5000})
    done = client.wait(job["id"])
    print(client.result(job["id"]))          # rendered table
    print(client.result(job["id"], format="json"))  # raw counters

API errors surface as :class:`ServeError` carrying the HTTP status and the
daemon's ``error`` message (e.g. a 400 for an invalid submission, a 409
for a result requested before the job finished).

**Resilience.** With ``retries`` set, *idempotent* GETs that fail with a
connection error are retried with exponential backoff before giving up —
a flaky network or a daemon mid-restart no longer kills a long poll.
Submissions (POSTs) are never retried by this layer: the daemon's request
coalescing makes an *intentional* duplicate submission cheap, but a blind
retry could still double-submit, so exactly-once stays the caller's call.
:meth:`~ServeClient.wait` additionally tolerates transient connection
errors between polls regardless of ``retries``, honouring only its own
deadline.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro import faults
from repro.log import get_logger
from repro.serve.service import DONE, FAILED

_log = get_logger(__name__)

#: Terminal job states — :meth:`ServeClient.wait` returns on either.
_TERMINAL_STATES = (DONE, FAILED)


class ServeError(RuntimeError):
    """An error response from a ``repro serve`` daemon.

    Carries the HTTP ``status`` and the daemon's ``message`` so callers can
    branch on conflict-vs-bad-request without parsing strings.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"serve API error {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talk to a running ``repro serve`` daemon over HTTP+JSON."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 0,
        retry_backoff: float = 0.2,
    ) -> None:
        """``base_url`` like ``http://127.0.0.1:8321``; ``timeout`` per request.

        ``retries`` re-issues *idempotent GETs* that fail with a connection
        error, sleeping ``retry_backoff * 2**attempt`` seconds between
        attempts.  HTTP error responses (the daemon answered) and POSTs are
        never retried.
        """
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = max(0.0, float(retry_backoff))

    # ------------------------------------------------------------------
    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Only idempotent GETs may retry; a POST is exactly-once here.
        attempts = 1 + (self.retries if payload is None else 0)
        for attempt in range(attempts):
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                if payload is None and faults.drop_http_response():
                    raise urllib.error.URLError("injected drop-http-response")
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    body = response.read()
                    content_type = response.headers.get("Content-Type", "")
            except urllib.error.HTTPError as error:
                raw = error.read()
                try:
                    message = json.loads(raw).get(
                        "error", raw.decode("utf-8", "replace")
                    )
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                raise ServeError(error.code, message) from None
            except urllib.error.URLError as error:
                if attempt + 1 < attempts:
                    delay = self.retry_backoff * (2**attempt)
                    _log.info(
                        "GET %s failed (%s); retrying in %.2fs (%d/%d)",
                        path,
                        error.reason,
                        delay,
                        attempt + 1,
                        self.retries,
                    )
                    if delay:
                        time.sleep(delay)
                    continue
                raise ServeError(0, f"cannot reach {url}: {error.reason}") from None
            if content_type.startswith("application/json"):
                return json.loads(body)
            return body.decode("utf-8")
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` — liveness probe."""
        return self._request("/v1/health")

    def submit(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/jobs`` — submit a scenario/cells document, return the job snapshot."""
        return self._request("/v1/jobs", payload=document)

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` — every job's status snapshot."""
        return self._request("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — one job's status, stats and timings."""
        return self._request(f"/v1/jobs/{job_id}")

    def result(self, job_id: str, format: str = "table") -> Any:
        """``GET /v1/jobs/<id>/result`` — rendered table (str) or raw counters (dict)."""
        return self._request(f"/v1/jobs/{job_id}/result?format={format}")

    def store_stats(self) -> Dict[str, Any]:
        """``GET /v1/store/stats`` — per-kind artifact counts/bytes and eviction info."""
        return self._request("/v1/store/stats")

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll_interval: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its snapshot.

        A transient connection error on one poll does not abort the wait —
        the daemon may be mid-restart or the network mid-hiccup; polling
        simply continues.  Raises :class:`ServeError` (status 0) if
        ``timeout`` seconds elapse first (with no timeout, a daemon that
        never comes back means polling forever — pass a timeout when the
        daemon's liveness is in question).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        state = "unknown"
        while True:
            try:
                snapshot = self.job(job_id)
            except ServeError as error:
                if error.status != 0:
                    raise  # The daemon answered: a real API error.
                _log.info(
                    "poll for job %s failed (%s); continuing to poll",
                    job_id,
                    error.message,
                )
            else:
                state = snapshot["state"]
                if state in _TERMINAL_STATES:
                    return snapshot
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    0, f"timed out waiting for job {job_id} (state: {state})"
                )
            time.sleep(poll_interval)
