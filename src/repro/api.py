"""The stable public facade: every blessed entry point under one import.

The packages under :mod:`repro` are layered for the implementation's sake
(engine, sweep, serve, workloads …); this module is layered for *callers'*
sake.  Everything a script, a notebook or an external tool should reach for
is re-exported here with one flat, documented ``__all__`` — the facade is
the compatibility surface: names listed here keep working across releases,
while the modules behind them stay free to move.

The blessed surface (see ``docs/api.md`` for the reference):

* **Running simulations** — :func:`run_cells` (alias :func:`run`), the one
  entrypoint that turns :class:`CellRequest` sequences into results through
  the deduplicating, artifact-cached, lane-batching engine;
  :class:`ExecutionEngine`, :class:`EngineStats`, :class:`JobTiming`,
  :class:`CellRunOutcome` and the :class:`ArtifactStore` behind it.
* **Describing work** — :class:`CellRequest`, :class:`SchemeSpec`,
  :class:`MachineSpec`, the ``BASELINE``/``IF_CONVERTED`` binary flavours,
  and :class:`ExperimentDefinition`.
* **Scenarios** — :class:`Scenario`, :func:`load_scenario`,
  :func:`builtin_scenario_names`, :func:`run_sweep`, :func:`render_sweep`.
* **Workloads** — :func:`resolve_workload`, :func:`registry_names`,
  :func:`build_workload`.
* **The experiment service** — :class:`ServeClient` (HTTP client of a
  ``repro serve`` daemon) and :class:`ExperimentService` (the in-process
  job scheduler it talks to).
* **Operations** — :func:`configure_logging` (the runtime's structured
  stderr logging) and :func:`fault_points` (the deterministic
  fault-injection catalog behind ``REPRO_FAULTS``).

Attributes resolve lazily (PEP 562), so ``import repro.api`` is cheap and
the facade can be imported from anywhere inside the package without
creating import cycles.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Dict, Tuple

#: Facade name → (defining module, attribute).  The single source of truth
#: for the public surface; ``__all__``, lazy resolution and the
#: ``tests/docs/test_api_surface.py`` docstring/docs checks all derive
#: from it.
_EXPORTS: Dict[str, Tuple[str, str]] = {
    # Running simulations
    "run": ("repro.engine.run", "run_cells"),
    "run_cells": ("repro.engine.run", "run_cells"),
    "CellRunOutcome": ("repro.engine.run", "CellRunOutcome"),
    "ExecutionEngine": ("repro.engine.executor", "ExecutionEngine"),
    "EngineStats": ("repro.engine.executor", "EngineStats"),
    "JobTiming": ("repro.engine.executor", "JobTiming"),
    "ArtifactStore": ("repro.engine.store", "ArtifactStore"),
    "default_cache_dir": ("repro.engine.store", "default_cache_dir"),
    # Describing work
    "CellRequest": ("repro.engine.planner", "CellRequest"),
    "ExperimentDefinition": ("repro.engine.planner", "ExperimentDefinition"),
    "SchemeSpec": ("repro.engine.jobs", "SchemeSpec"),
    "MachineSpec": ("repro.pipeline.machine", "MachineSpec"),
    "SamplingSpec": ("repro.pipeline.windowed", "SamplingSpec"),
    "simulate_windowed": ("repro.pipeline.windowed", "simulate_windowed"),
    "BASELINE": ("repro.engine.jobs", "BASELINE"),
    "IF_CONVERTED": ("repro.engine.jobs", "IF_CONVERTED"),
    "FLAVOURS": ("repro.engine.jobs", "FLAVOURS"),
    # Scenarios (design-space sweeps)
    "Scenario": ("repro.sweep.scenario", "Scenario"),
    "ScenarioError": ("repro.sweep.scenario", "ScenarioError"),
    "load_scenario": ("repro.sweep.scenario", "load_scenario"),
    "builtin_scenario_names": ("repro.sweep.scenario", "builtin_scenario_names"),
    "run_sweep": ("repro.sweep.runner", "run_sweep"),
    "render_sweep": ("repro.sweep.report", "render_sweep"),
    # Workloads
    "resolve_workload": ("repro.workloads.registry", "resolve_workload"),
    "registry_names": ("repro.workloads.registry", "registry_names"),
    "build_workload": ("repro.workloads.registry", "build_workload"),
    # The experiment service
    "ServeClient": ("repro.client", "ServeClient"),
    "ServeError": ("repro.client", "ServeError"),
    "ExperimentService": ("repro.serve.service", "ExperimentService"),
    # Operations (logging and chaos testing)
    "configure_logging": ("repro.log", "configure_logging"),
    "fault_points": ("repro.faults", "fault_points"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}") from None
    value = getattr(import_module(module_name), attribute)
    # Cache on the module so the import machinery only runs once per name.
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
