"""Design-choice ablations called out in section 3.3.

Two design decisions of the predicate predictor are argued qualitatively in
the paper; these ablations measure them:

* **single dual-hashed PVT vs split PVT** — "Having a split PVT table may
  result in a suboptimal utilization of the available space, producing an
  increase of aliasing conflicts.  Instead, we use an unique PVT table that
  is accessed with two different hash functions";
* **global-history corruption** — the accuracy lost to the corruption window
  between a wrong compare prediction and its repair, measured by comparing
  the real scheme against the same scheme with a perfect-history oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine import (
    IF_CONVERTED,
    ExperimentDefinition,
    ExperimentOutputs,
    SchemeSpec,
    resolve_engine,
    sweep,
)
from repro.stats.tables import ResultTable

PVT_PAPER = "dual-hash single PVT"
PVT_ALT = "split PVT"
HISTORY_REAL = "speculative history"
HISTORY_ORACLE = "oracle history"

PVT_SCHEMES = {
    PVT_PAPER: SchemeSpec.make("predicate"),
    PVT_ALT: SchemeSpec.make("predicate", split_pvt=True),
}

HISTORY_SCHEMES = {
    HISTORY_REAL: SchemeSpec.make("predicate"),
    HISTORY_ORACLE: SchemeSpec.make("predicate", perfect_history=True),
}


@dataclass
class AblationResult:
    """Comparison between the paper's design point and one alternative."""

    name: str
    table: ResultTable
    #: average accuracy advantage of the paper's design point (positive =
    #: the paper's choice is better).
    average_advantage: float

    def render(self) -> str:
        return "\n".join(
            [
                self.table.render(),
                "",
                f"{self.name}: average accuracy advantage of the paper's design "
                f"point = {100 * self.average_advantage:.2f}%",
            ]
        )


# ----------------------------------------------------------------------
# PVT organisation
# ----------------------------------------------------------------------
def pvt_ablation_definition(benchmarks: Sequence[str]) -> ExperimentDefinition:
    return sweep("ablation-pvt", benchmarks, IF_CONVERTED, PVT_SCHEMES)


def collect_pvt_ablation(
    outputs: ExperimentOutputs, benchmarks: Sequence[str]
) -> AblationResult:
    table = ResultTable.from_results(
        title="Ablation: PVT organisation (if-converted code)",
        columns=[PVT_PAPER, PVT_ALT],
        benchmarks=benchmarks,
        outputs=outputs,
    )
    return AblationResult(
        name="PVT organisation",
        table=table,
        average_advantage=table.delta(PVT_PAPER, PVT_ALT),
    )


def run_pvt_ablation(
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> AblationResult:
    """Single dual-hashed PVT (paper) vs statically split PVT."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = pvt_ablation_definition(benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    return collect_pvt_ablation(outputs, benchmarks)


# ----------------------------------------------------------------------
# Global-history corruption
# ----------------------------------------------------------------------
def history_ablation_definition(benchmarks: Sequence[str]) -> ExperimentDefinition:
    return sweep("ablation-history", benchmarks, IF_CONVERTED, HISTORY_SCHEMES)


def collect_history_ablation(
    outputs: ExperimentOutputs, benchmarks: Sequence[str]
) -> AblationResult:
    table = ResultTable.from_results(
        title="Ablation: global-history corruption (if-converted code)",
        columns=[HISTORY_REAL, HISTORY_ORACLE],
        benchmarks=benchmarks,
        outputs=outputs,
    )
    # Here the "paper design point" is the realistic scheme; the advantage is
    # negative (the oracle is better), quantifying the corruption cost.
    return AblationResult(
        name="global-history corruption cost",
        table=table,
        average_advantage=table.delta(HISTORY_REAL, HISTORY_ORACLE),
    )


def run_history_ablation(
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> AblationResult:
    """Real speculative history (with its corruption window) vs oracle update."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = history_ablation_definition(benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    return collect_history_ablation(outputs, benchmarks)
