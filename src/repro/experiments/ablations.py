"""Design-choice ablations called out in section 3.3.

Two design decisions of the predicate predictor are argued qualitatively in
the paper; these ablations measure them:

* **single dual-hashed PVT vs split PVT** — "Having a split PVT table may
  result in a suboptimal utilization of the available space, producing an
  increase of aliasing conflicts.  Instead, we use an unique PVT table that
  is accessed with two different hash functions";
* **global-history corruption** — the accuracy lost to the corruption window
  between a wrong compare prediction and its repair, measured by comparing
  the real scheme against the same scheme with a perfect-history oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional

from repro.experiments.runner import IF_CONVERTED, ExperimentRunner
from repro.experiments.setup import ExperimentProfile, make_predicate_scheme
from repro.stats.tables import ResultTable


@dataclass
class AblationResult:
    """Comparison between the paper's design point and one alternative."""

    name: str
    table: ResultTable
    #: average accuracy advantage of the paper's design point (positive =
    #: the paper's choice is better).
    average_advantage: float

    def render(self) -> str:
        return "\n".join(
            [
                self.table.render(),
                "",
                f"{self.name}: average accuracy advantage of the paper's design "
                f"point = {100 * self.average_advantage:.2f}%",
            ]
        )


def run_pvt_ablation(
    profile: Optional[ExperimentProfile] = None,
    runner: Optional[ExperimentRunner] = None,
) -> AblationResult:
    """Single dual-hashed PVT (paper) vs statically split PVT."""
    runner = runner or ExperimentRunner(profile)
    paper_label = "dual-hash single PVT"
    alt_label = "split PVT"
    table = ResultTable(
        title="Ablation: PVT organisation (if-converted code)",
        columns=[paper_label, alt_label],
    )
    for benchmark in runner.benchmarks():
        runs = runner.run_schemes(
            benchmark,
            IF_CONVERTED,
            {
                paper_label: make_predicate_scheme,
                alt_label: partial(make_predicate_scheme, split_pvt=True),
            },
        )
        table.add_row(
            benchmark,
            {label: run.misprediction_rate for label, run in runs.items()},
        )
        runner.drop_trace(benchmark, IF_CONVERTED)
    return AblationResult(
        name="PVT organisation",
        table=table,
        average_advantage=table.delta(paper_label, alt_label),
    )


def run_history_ablation(
    profile: Optional[ExperimentProfile] = None,
    runner: Optional[ExperimentRunner] = None,
) -> AblationResult:
    """Real speculative history (with its corruption window) vs oracle update."""
    runner = runner or ExperimentRunner(profile)
    real_label = "speculative history"
    oracle_label = "oracle history"
    table = ResultTable(
        title="Ablation: global-history corruption (if-converted code)",
        columns=[real_label, oracle_label],
    )
    for benchmark in runner.benchmarks():
        runs = runner.run_schemes(
            benchmark,
            IF_CONVERTED,
            {
                real_label: make_predicate_scheme,
                oracle_label: partial(make_predicate_scheme, perfect_history=True),
            },
        )
        table.add_row(
            benchmark,
            {label: run.misprediction_rate for label, run in runs.items()},
        )
        runner.drop_trace(benchmark, IF_CONVERTED)
    # Here the "paper design point" is the realistic scheme; the advantage is
    # negative (the oracle is better), quantifying the corruption cost.
    return AblationResult(
        name="global-history corruption cost",
        table=table,
        average_advantage=table.delta(real_label, oracle_label),
    )
