"""Figure 6: branch prediction accuracy on **if-converted** code.

Figure 6a compares three schemes on binaries compiled with if-conversion:
a 144 KB PEP-PA predictor, a 148 KB conventional two-level predictor, and
the 148 KB predicate predictor.  The paper reports the predicate predictor
as the most accurate on every benchmark but one (twolf), with a 1.5 %
average accuracy increase over the best other scheme, and PEP-PA —
surprisingly — behind the conventional predictor.

Figure 6b breaks the accuracy difference between the predicate predictor and
the conventional predictor into an *early-resolved* contribution (counted as
branches that were early-resolved while the conventional predictor
mispredicted them) and a *correlation* contribution (the remainder, which
also absorbs the scheme's negative effects and can therefore be negative).
The paper reports roughly +1 % from correlation and +0.5 % from
early-resolved branches on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.early_resolution import AccuracyBreakdown, accuracy_breakdown
from repro.engine import (
    IF_CONVERTED,
    ExperimentDefinition,
    ExperimentOutputs,
    SchemeSpec,
    resolve_engine,
    sweep,
)
from repro.stats.tables import ResultTable

PEPPA = "pep-pa"
CONVENTIONAL = "conventional"
PREDICATE = "predicate-predictor"

#: The schemes Figure 6a sweeps, keyed by column label.
FIGURE6_SCHEMES = {
    PEPPA: SchemeSpec.make("pep-pa"),
    CONVENTIONAL: SchemeSpec.make("conventional"),
    PREDICATE: SchemeSpec.make("predicate"),
}


@dataclass
class Figure6Result:
    """Figure 6a table + Figure 6b breakdown + headline numbers."""

    table: ResultTable
    breakdown: List[AccuracyBreakdown]
    #: accuracy increase of the predicate predictor over the best other
    #: scheme, averaged over benchmarks (paper: 1.5%).
    average_increase_over_best: float
    #: benchmarks where the predicate predictor has the lowest rate.
    predicate_best_count: int
    #: average early-resolved contribution (paper: ~0.5%).
    average_early_resolved_improvement: float
    #: average correlation contribution (paper: ~1%).
    average_correlation_improvement: float

    def render(self) -> str:
        lines = [self.table.render(), ""]
        lines.append("Figure 6b - accuracy difference breakdown (percentage points)")
        lines.append(f"{'benchmark':12s} {'early-resolved':>15s} {'correlation':>12s}")
        for item in self.breakdown:
            lines.append(
                f"{item.benchmark:12s} {100 * item.early_resolved_improvement:15.2f} "
                f"{100 * item.correlation_improvement:12.2f}"
            )
        lines.append("")
        lines.append(
            f"average increase over best other scheme: "
            f"{100 * self.average_increase_over_best:.2f}% (paper: 1.5%)"
        )
        lines.append(
            f"average early-resolved / correlation contributions: "
            f"{100 * self.average_early_resolved_improvement:.2f}% / "
            f"{100 * self.average_correlation_improvement:.2f}% "
            f"(paper: 0.5% / 1%)"
        )
        return "\n".join(lines)


def figure6_definition(benchmarks: Sequence[str]) -> ExperimentDefinition:
    """Declare the Figure 6 sweep over ``benchmarks``."""
    return sweep("figure6", benchmarks, IF_CONVERTED, FIGURE6_SCHEMES)


def collect_figure6(
    outputs: ExperimentOutputs, benchmarks: Sequence[str]
) -> Figure6Result:
    """Assemble the Figure 6a/6b result from engine outputs."""
    table = ResultTable.from_results(
        title="Figure 6a - branch misprediction rate, if-converted code",
        columns=[PEPPA, CONVENTIONAL, PREDICATE],
        benchmarks=benchmarks,
        outputs=outputs,
    )
    breakdown = [
        accuracy_breakdown(
            benchmark,
            conventional=outputs[(benchmark, CONVENTIONAL)].accuracy,
            predicate=outputs[(benchmark, PREDICATE)].accuracy,
        )
        for benchmark in benchmarks
    ]

    increases = []
    predicate_best = 0
    for benchmark in table.benchmarks():
        best_other = min(
            table.value(benchmark, PEPPA), table.value(benchmark, CONVENTIONAL)
        )
        predicate_rate = table.value(benchmark, PREDICATE)
        increases.append(best_other - predicate_rate)
        if predicate_rate <= best_other:
            predicate_best += 1

    early = [b.early_resolved_improvement for b in breakdown]
    correlation = [b.correlation_improvement for b in breakdown]
    count = len(breakdown) or 1
    return Figure6Result(
        table=table,
        breakdown=breakdown,
        average_increase_over_best=sum(increases) / len(increases) if increases else 0.0,
        predicate_best_count=predicate_best,
        average_early_resolved_improvement=sum(early) / count,
        average_correlation_improvement=sum(correlation) / count,
    )


def run_figure6(
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> Figure6Result:
    """Regenerate Figure 6a and 6b over the selected benchmarks."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = figure6_definition(benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    return collect_figure6(outputs, benchmarks)
