"""Selective predicated execution: the IPC side of the proposal (section 5).

Besides accuracy, the paper argues that the same predictor enables efficient
predicated execution on an out-of-order core: instructions whose predicate
is confidently predicted false are cancelled at rename (freeing issue-queue
entries and functional units), and confidently-true predictions remove both
the predicate data dependence and the old-destination dependence introduced
by conservative multiple-definition handling.  The prior work it builds on
([16]) reports an 11 % IPC improvement over previous predicated-execution
techniques; here we measure the IPC of the if-converted binaries under:

* the conventional scheme (conservative, conditional-move-style handling of
  every predicated instruction);
* the predicate scheme with selective predication disabled (predictions used
  for branches only);
* the full predicate scheme with selective predication enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.engine import (
    IF_CONVERTED,
    ExperimentDefinition,
    ExperimentOutputs,
    SchemeSpec,
    resolve_engine,
    sweep,
)
from repro.stats.tables import ResultTable

CONSERVATIVE = "conventional (conservative predication)"
NO_SELECTIVE = "predicate predictor, no selective predication"
SELECTIVE = "predicate predictor + selective predication"

SELECTIVE_IPC_SCHEMES = {
    CONSERVATIVE: SchemeSpec.make("conventional"),
    NO_SELECTIVE: SchemeSpec.make("predicate", selective_predication=False),
    SELECTIVE: SchemeSpec.make("predicate"),
}


@dataclass
class SelectiveIPCResult:
    """IPC comparison on if-converted binaries."""

    table: ResultTable
    #: geometric-mean-ish (arithmetic here) speed-up of selective predication
    #: over the conservative baseline.
    speedup_over_conservative: float
    speedup_over_non_selective: float
    #: instructions cancelled at rename per benchmark (resource savings).
    cancelled_fraction: Dict[str, float]

    def render(self) -> str:
        return "\n".join(
            [
                self.table.render(percent=False, decimals=3),
                "",
                f"selective predication IPC vs conservative baseline: "
                f"{self.speedup_over_conservative:.3f}x",
                f"selective predication IPC vs non-selective predicate scheme: "
                f"{self.speedup_over_non_selective:.3f}x "
                f"(the paper's prior work [16] reports ~1.11x over previous techniques)",
            ]
        )


def selective_ipc_definition(benchmarks: Sequence[str]) -> ExperimentDefinition:
    """Declare the IPC sweep over ``benchmarks``."""
    return sweep("selective-ipc", benchmarks, IF_CONVERTED, SELECTIVE_IPC_SCHEMES)


def collect_selective_ipc(
    outputs: ExperimentOutputs, benchmarks: Sequence[str]
) -> SelectiveIPCResult:
    """Assemble the IPC comparison from engine outputs."""
    table = ResultTable.from_results(
        title="Selective predicated execution - IPC on if-converted code",
        columns=[CONSERVATIVE, NO_SELECTIVE, SELECTIVE],
        benchmarks=benchmarks,
        outputs=outputs,
        value=lambda result: result.ipc,
    )
    cancelled: Dict[str, float] = {}
    for benchmark in benchmarks:
        metrics = outputs[(benchmark, SELECTIVE)].metrics
        fetched = metrics.fetched_instructions or 1
        cancelled[benchmark] = metrics.cancelled_at_rename / fetched

    conservative_mean = table.mean(CONSERVATIVE)
    non_selective_mean = table.mean(NO_SELECTIVE)
    selective_mean = table.mean(SELECTIVE)
    return SelectiveIPCResult(
        table=table,
        speedup_over_conservative=(
            selective_mean / conservative_mean if conservative_mean else 0.0
        ),
        speedup_over_non_selective=(
            selective_mean / non_selective_mean if non_selective_mean else 0.0
        ),
        cancelled_fraction=cancelled,
    )


def run_selective_ipc(
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> SelectiveIPCResult:
    """Measure IPC of if-converted code under the three handling policies."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = selective_ipc_definition(benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    return collect_selective_ipc(outputs, benchmarks)
