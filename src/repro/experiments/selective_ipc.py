"""Selective predicated execution: the IPC side of the proposal (section 5).

Besides accuracy, the paper argues that the same predictor enables efficient
predicated execution on an out-of-order core: instructions whose predicate
is confidently predicted false are cancelled at rename (freeing issue-queue
entries and functional units), and confidently-true predictions remove both
the predicate data dependence and the old-destination dependence introduced
by conservative multiple-definition handling.  The prior work it builds on
([16]) reports an 11 % IPC improvement over previous predicated-execution
techniques; here we measure the IPC of the if-converted binaries under:

* the conventional scheme (conservative, conditional-move-style handling of
  every predicated instruction);
* the predicate scheme with selective predication disabled (predictions used
  for branches only);
* the full predicate scheme with selective predication enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional

from repro.experiments.runner import IF_CONVERTED, ExperimentRunner
from repro.experiments.setup import (
    ExperimentProfile,
    make_conventional_scheme,
    make_predicate_scheme,
)
from repro.stats.tables import ResultTable

CONSERVATIVE = "conventional (conservative predication)"
NO_SELECTIVE = "predicate predictor, no selective predication"
SELECTIVE = "predicate predictor + selective predication"


@dataclass
class SelectiveIPCResult:
    """IPC comparison on if-converted binaries."""

    table: ResultTable
    #: geometric-mean-ish (arithmetic here) speed-up of selective predication
    #: over the conservative baseline.
    speedup_over_conservative: float
    speedup_over_non_selective: float
    #: instructions cancelled at rename per benchmark (resource savings).
    cancelled_fraction: Dict[str, float]

    def render(self) -> str:
        return "\n".join(
            [
                self.table.render(percent=False, decimals=3),
                "",
                f"selective predication IPC vs conservative baseline: "
                f"{self.speedup_over_conservative:.3f}x",
                f"selective predication IPC vs non-selective predicate scheme: "
                f"{self.speedup_over_non_selective:.3f}x "
                f"(the paper's prior work [16] reports ~1.11x over previous techniques)",
            ]
        )


def run_selective_ipc(
    profile: Optional[ExperimentProfile] = None,
    runner: Optional[ExperimentRunner] = None,
) -> SelectiveIPCResult:
    """Measure IPC of if-converted code under the three handling policies."""
    runner = runner or ExperimentRunner(profile)
    table = ResultTable(
        title="Selective predicated execution - IPC on if-converted code",
        columns=[CONSERVATIVE, NO_SELECTIVE, SELECTIVE],
    )
    cancelled: Dict[str, float] = {}

    for benchmark in runner.benchmarks():
        runs = runner.run_schemes(
            benchmark,
            IF_CONVERTED,
            {
                CONSERVATIVE: make_conventional_scheme,
                NO_SELECTIVE: partial(make_predicate_scheme, selective_predication=False),
                SELECTIVE: make_predicate_scheme,
            },
        )
        table.add_row(benchmark, {label: run.ipc for label, run in runs.items()})
        metrics = runs[SELECTIVE].result.metrics
        fetched = metrics.fetched_instructions or 1
        cancelled[benchmark] = metrics.cancelled_at_rename / fetched
        runner.drop_trace(benchmark, IF_CONVERTED)

    conservative_mean = table.mean(CONSERVATIVE)
    non_selective_mean = table.mean(NO_SELECTIVE)
    selective_mean = table.mean(SELECTIVE)
    return SelectiveIPCResult(
        table=table,
        speedup_over_conservative=(
            selective_mean / conservative_mean if conservative_mean else 0.0
        ),
        speedup_over_non_selective=(
            selective_mean / non_selective_mean if non_selective_mean else 0.0
        ),
        cancelled_fraction=cancelled,
    )
