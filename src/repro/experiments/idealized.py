"""The idealized-predictor isolation study (sections 4.2 and 4.3).

To separate the benefit of early-resolved branches and correlation from the
two negative side effects of predicate prediction (alias conflicts from the
extra predictions, and the global-history corruption window), the paper
repeats both experiments with *idealized* predictors: "without alias
conflicts and with perfect global-history update".  It reports that the
idealized predicate predictor is consistently better on every benchmark,
with an average accuracy increase of 2.24 % on non-if-converted code and
almost 2 % on if-converted code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine import (
    BASELINE,
    IF_CONVERTED,
    ExperimentDefinition,
    ExperimentOutputs,
    SchemeSpec,
    resolve_engine,
    sweep,
)
from repro.stats.tables import ResultTable

CONVENTIONAL = "ideal-conventional"
PREDICATE = "ideal-predicate-predictor"

#: The idealized scheme pair, keyed by column label.
IDEALIZED_SCHEMES = {
    CONVENTIONAL: SchemeSpec.make(
        "conventional", ideal_no_alias=True, perfect_history=True
    ),
    PREDICATE: SchemeSpec.make(
        "predicate", ideal_no_alias=True, perfect_history=True
    ),
}


@dataclass
class IdealizedResult:
    """Idealized comparison for one binary flavour."""

    flavour: str
    table: ResultTable
    average_accuracy_increase: float
    predicate_wins: int

    def render(self) -> str:
        target = "2.24%" if self.flavour == BASELINE else "~2%"
        return "\n".join(
            [
                self.table.render(),
                "",
                f"average accuracy increase (idealized predictors, {self.flavour} code): "
                f"{100 * self.average_accuracy_increase:.2f}% (paper: {target}, "
                f"consistent win on every benchmark)",
            ]
        )


def idealized_definition(
    flavour: str, benchmarks: Sequence[str]
) -> ExperimentDefinition:
    """Declare the idealized sweep for one binary flavour."""
    if flavour not in (BASELINE, IF_CONVERTED):
        raise ValueError(f"unknown binary flavour {flavour!r}")
    return sweep(f"idealized-{flavour}", benchmarks, flavour, IDEALIZED_SCHEMES)


def collect_idealized(
    outputs: ExperimentOutputs, benchmarks: Sequence[str], flavour: str
) -> IdealizedResult:
    """Assemble the idealized-study result from engine outputs."""
    table = ResultTable.from_results(
        title=f"Idealized predictors (no aliasing, perfect history) - {flavour} code",
        columns=[CONVENTIONAL, PREDICATE],
        benchmarks=benchmarks,
        outputs=outputs,
    )
    return IdealizedResult(
        flavour=flavour,
        table=table,
        average_accuracy_increase=table.delta(PREDICATE, CONVENTIONAL),
        predicate_wins=table.wins(PREDICATE, CONVENTIONAL),
    )


def run_idealized_study(
    flavour: str = BASELINE,
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> IdealizedResult:
    """Run the idealized comparison on one binary flavour."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = idealized_definition(flavour, benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    return collect_idealized(outputs, benchmarks, flavour)
