"""The idealized-predictor isolation study (sections 4.2 and 4.3).

To separate the benefit of early-resolved branches and correlation from the
two negative side effects of predicate prediction (alias conflicts from the
extra predictions, and the global-history corruption window), the paper
repeats both experiments with *idealized* predictors: "without alias
conflicts and with perfect global-history update".  It reports that the
idealized predicate predictor is consistently better on every benchmark,
with an average accuracy increase of 2.24 % on non-if-converted code and
almost 2 % on if-converted code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.emulator.trace import trace_statistics
from repro.engine import (
    BASELINE,
    IF_CONVERTED,
    ExperimentDefinition,
    ExperimentOutputs,
    SchemeSpec,
    resolve_engine,
    sweep,
)
from repro.stats.tables import ResultTable

CONVENTIONAL = "ideal-conventional"
PREDICATE = "ideal-predicate-predictor"

#: The idealized scheme pair, keyed by column label.
IDEALIZED_SCHEMES = {
    CONVENTIONAL: SchemeSpec.make(
        "conventional", ideal_no_alias=True, perfect_history=True
    ),
    PREDICATE: SchemeSpec.make(
        "predicate", ideal_no_alias=True, perfect_history=True
    ),
}


@dataclass
class IdealizedResult:
    """Idealized comparison for one binary flavour."""

    flavour: str
    table: ResultTable
    average_accuracy_increase: float
    predicate_wins: int
    #: Per-benchmark accuracy of the per-site static oracle — the alias-free,
    #: perfect-history limit of a static predictor, computed as one
    #: vectorized pass over each benchmark's columnar trace.
    oracle_accuracy: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        target = "2.24%" if self.flavour == BASELINE else "~2%"
        lines = [
            self.table.render(),
            "",
            f"average accuracy increase (idealized predictors, {self.flavour} code): "
            f"{100 * self.average_accuracy_increase:.2f}% (paper: {target}, "
            f"consistent win on every benchmark)",
        ]
        if self.oracle_accuracy:
            mean = sum(self.oracle_accuracy.values()) / len(self.oracle_accuracy)
            lines.append(
                f"static per-site oracle (trace-level upper bound, {self.flavour} "
                f"code): {100 * mean:.2f}% mean accuracy over "
                f"{len(self.oracle_accuracy)} benchmarks"
            )
        return "\n".join(lines)


def idealized_definition(
    flavour: str, benchmarks: Sequence[str]
) -> ExperimentDefinition:
    """Declare the idealized sweep for one binary flavour."""
    if flavour not in (BASELINE, IF_CONVERTED):
        raise ValueError(f"unknown binary flavour {flavour!r}")
    return sweep(f"idealized-{flavour}", benchmarks, flavour, IDEALIZED_SCHEMES)


def collect_idealized(
    outputs: ExperimentOutputs,
    benchmarks: Sequence[str],
    flavour: str,
    oracle_accuracy: Optional[Dict[str, float]] = None,
) -> IdealizedResult:
    """Assemble the idealized-study result from engine outputs."""
    table = ResultTable.from_results(
        title=f"Idealized predictors (no aliasing, perfect history) - {flavour} code",
        columns=[CONVENTIONAL, PREDICATE],
        benchmarks=benchmarks,
        outputs=outputs,
    )
    return IdealizedResult(
        flavour=flavour,
        table=table,
        average_accuracy_increase=table.delta(PREDICATE, CONVENTIONAL),
        predicate_wins=table.wins(PREDICATE, CONVENTIONAL),
        oracle_accuracy=dict(oracle_accuracy or {}),
    )


def oracle_accuracies(
    engine, benchmarks: Sequence[str], flavour: str
) -> Dict[str, float]:
    """Per-benchmark static-oracle accuracy from the dynamic traces.

    On the optimized path each benchmark's trace is a columnar
    :class:`~repro.emulator.tracepack.TracePack` and the per-site outcome
    aggregation runs as a vectorized numpy pass
    (:func:`repro.emulator.trace.trace_statistics`); with ``REPRO_OPT=0``
    the reference per-instruction loop computes the identical numbers.

    The scalar results are memoised per engine (keyed by cell), so repeated
    studies over a shared engine — and the two flavours of ``repro all`` —
    never re-materialise a trace the bounded LRU has already evicted.
    """
    cache: Dict[tuple, float] = getattr(engine, "_oracle_accuracy_cache", None)
    if cache is None:
        cache = {}
        engine._oracle_accuracy_cache = cache
    accuracies: Dict[str, float] = {}
    for benchmark in benchmarks:
        cell = (benchmark, flavour)
        accuracy = cache.get(cell)
        if accuracy is None:
            accuracy = trace_statistics(
                engine.collect_trace(benchmark, flavour)
            ).static_oracle_accuracy()
            cache[cell] = accuracy
        accuracies[benchmark] = accuracy
    return accuracies


def run_idealized_study(
    flavour: str = BASELINE,
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> IdealizedResult:
    """Run the idealized comparison on one binary flavour."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = idealized_definition(flavour, benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    oracle = oracle_accuracies(engine, benchmarks, flavour)
    return collect_idealized(outputs, benchmarks, flavour, oracle_accuracy=oracle)
