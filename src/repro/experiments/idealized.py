"""The idealized-predictor isolation study (sections 4.2 and 4.3).

To separate the benefit of early-resolved branches and correlation from the
two negative side effects of predicate prediction (alias conflicts from the
extra predictions, and the global-history corruption window), the paper
repeats both experiments with *idealized* predictors: "without alias
conflicts and with perfect global-history update".  It reports that the
idealized predicate predictor is consistently better on every benchmark,
with an average accuracy increase of 2.24 % on non-if-converted code and
almost 2 % on if-converted code.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional

from repro.experiments.runner import BASELINE, IF_CONVERTED, ExperimentRunner
from repro.experiments.setup import (
    ExperimentProfile,
    make_conventional_scheme,
    make_predicate_scheme,
)
from repro.stats.tables import ResultTable

CONVENTIONAL = "ideal-conventional"
PREDICATE = "ideal-predicate-predictor"


@dataclass
class IdealizedResult:
    """Idealized comparison for one binary flavour."""

    flavour: str
    table: ResultTable
    average_accuracy_increase: float
    predicate_wins: int

    def render(self) -> str:
        target = "2.24%" if self.flavour == BASELINE else "~2%"
        return "\n".join(
            [
                self.table.render(),
                "",
                f"average accuracy increase (idealized predictors, {self.flavour} code): "
                f"{100 * self.average_accuracy_increase:.2f}% (paper: {target}, "
                f"consistent win on every benchmark)",
            ]
        )


def run_idealized_study(
    flavour: str = BASELINE,
    profile: Optional[ExperimentProfile] = None,
    runner: Optional[ExperimentRunner] = None,
) -> IdealizedResult:
    """Run the idealized comparison on one binary flavour."""
    if flavour not in (BASELINE, IF_CONVERTED):
        raise ValueError(f"unknown binary flavour {flavour!r}")
    runner = runner or ExperimentRunner(profile)
    table = ResultTable(
        title=f"Idealized predictors (no aliasing, perfect history) - {flavour} code",
        columns=[CONVENTIONAL, PREDICATE],
    )
    for benchmark in runner.benchmarks():
        runs = runner.run_schemes(
            benchmark,
            flavour,
            {
                CONVENTIONAL: partial(
                    make_conventional_scheme, ideal_no_alias=True, perfect_history=True
                ),
                PREDICATE: partial(
                    make_predicate_scheme, ideal_no_alias=True, perfect_history=True
                ),
            },
        )
        table.add_row(
            benchmark,
            {label: run.misprediction_rate for label, run in runs.items()},
        )
        runner.drop_trace(benchmark, flavour)

    return IdealizedResult(
        flavour=flavour,
        table=table,
        average_accuracy_increase=table.delta(PREDICATE, CONVENTIONAL),
        predicate_wins=table.wins(PREDICATE, CONVENTIONAL),
    )
