"""Experiment runner: binaries → traces → scheme simulations, with caching.

The accuracy experiments simulate the *same* dynamic trace under several
schemes (that is what makes the Figure 6b per-branch breakdown well
defined), so the runner caches compiled binaries and collected traces per
(benchmark, flavour) within its lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.compiler.binaries import BinaryFactory
from repro.emulator.executor import DynInst, Emulator
from repro.experiments.setup import ExperimentProfile, PAPER_PROFILE
from repro.pipeline.core import OutOfOrderCore, SimulationResult
from repro.pipeline.scheme_api import BranchHandlingScheme
from repro.program.program import Program
from repro.workloads.spec_suite import build_workload, workload_names

#: Binary flavours used by the evaluation.
BASELINE = "baseline"
IF_CONVERTED = "if-converted"


@dataclass
class BenchmarkRun:
    """One (benchmark, flavour, scheme) simulation."""

    benchmark: str
    flavour: str
    result: SimulationResult

    @property
    def misprediction_rate(self) -> float:
        return self.result.misprediction_rate

    @property
    def ipc(self) -> float:
        return self.result.ipc


class ExperimentRunner:
    """Builds binaries, collects traces and runs schemes over them."""

    def __init__(self, profile: Optional[ExperimentProfile] = None) -> None:
        self.profile = profile or PAPER_PROFILE
        self.factory = BinaryFactory(profile_budget=self.profile.profile_budget)
        self._binaries: Dict[Tuple[str, str], Program] = {}
        self._traces: Dict[Tuple[str, str], List[DynInst]] = {}

    # ------------------------------------------------------------------
    def benchmarks(self) -> List[str]:
        """Benchmarks selected by the profile (default: the full suite)."""
        return list(self.profile.benchmarks or workload_names())

    def binary(self, benchmark: str, flavour: str) -> Program:
        """Return (building and caching) one compiled binary."""
        key = (benchmark, flavour)
        if key not in self._binaries:
            generator = lambda: build_workload(benchmark)  # noqa: E731
            if flavour == BASELINE:
                program = self.factory.build_baseline(benchmark, generator)
            elif flavour == IF_CONVERTED:
                program = self.factory.build_if_converted(benchmark, generator)
            else:
                raise ValueError(f"unknown binary flavour {flavour!r}")
            self._binaries[key] = program
        return self._binaries[key]

    def trace(self, benchmark: str, flavour: str) -> List[DynInst]:
        """Return (collecting and caching) the dynamic trace of one binary."""
        key = (benchmark, flavour)
        if key not in self._traces:
            program = self.binary(benchmark, flavour)
            emulator = Emulator(program)
            self._traces[key] = list(
                emulator.run(self.profile.instructions_per_benchmark)
            )
        return self._traces[key]

    def drop_trace(self, benchmark: str, flavour: str) -> None:
        """Free a cached trace (the full suite's traces are sizeable)."""
        self._traces.pop((benchmark, flavour), None)

    # ------------------------------------------------------------------
    def run_scheme(
        self,
        benchmark: str,
        flavour: str,
        scheme_factory: Callable[[], BranchHandlingScheme],
    ) -> BenchmarkRun:
        """Simulate one benchmark binary under a freshly-built scheme."""
        trace = self.trace(benchmark, flavour)
        core = OutOfOrderCore()
        scheme = scheme_factory()
        result = core.run(iter(trace), scheme, program_name=benchmark)
        return BenchmarkRun(benchmark=benchmark, flavour=flavour, result=result)

    def run_schemes(
        self,
        benchmark: str,
        flavour: str,
        scheme_factories: Dict[str, Callable[[], BranchHandlingScheme]],
    ) -> Dict[str, BenchmarkRun]:
        """Simulate one benchmark under several schemes over the same trace."""
        return {
            label: self.run_scheme(benchmark, flavour, factory)
            for label, factory in scheme_factories.items()
        }
