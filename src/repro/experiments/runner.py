"""Legacy experiment runner: a thin compatibility shim over the engine.

Historically this module owned binary/trace caching and every experiment
looped over it by hand.  That role moved to :mod:`repro.engine`:
experiments now declare their sweeps as
:class:`~repro.engine.ExperimentDefinition` objects and the
:class:`~repro.engine.ExecutionEngine` plans, deduplicates, caches and
(optionally) parallelises them.  :class:`ExperimentRunner` remains as the
stable entry point older callers (tests, the benchmark harness, examples)
already use — it simply forwards to an engine it owns, so a runner shared
across experiments shares the engine's caches.

Trace lifetime is now an engine responsibility (a bounded LRU), so callers
no longer need the historical ``drop_trace`` bookkeeping; the method is kept
for compatibility and simply forwards to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.emulator.executor import DynInst
from repro.engine.executor import ExecutionEngine
from repro.engine.jobs import BASELINE, IF_CONVERTED, SchemeSpec  # noqa: F401 (re-export)
from repro.engine.store import ArtifactStore
from repro.pipeline.core import OutOfOrderCore, SimulationResult
from repro.pipeline.scheme_api import BranchHandlingScheme
from repro.program.program import Program


@dataclass
class BenchmarkRun:
    """One (benchmark, flavour, scheme) simulation."""

    benchmark: str
    flavour: str
    result: SimulationResult

    @property
    def misprediction_rate(self) -> float:
        return self.result.misprediction_rate

    @property
    def ipc(self) -> float:
        return self.result.ipc


class ExperimentRunner:
    """Builds binaries, collects traces and runs schemes over them."""

    def __init__(
        self,
        profile=None,
        store: Optional[ArtifactStore] = None,
        jobs: int = 1,
    ) -> None:
        self.engine = ExecutionEngine(profile=profile, store=store, jobs=jobs)
        self.profile = self.engine.profile
        self.factory = self.engine.factory
        #: Materialised object views of columnar traces, keyed by cell and
        #: tied to the underlying pack's identity (see :meth:`trace`).
        self._materialised: Dict = {}

    # ------------------------------------------------------------------
    @property
    def _binaries(self) -> Dict:
        """The engine's in-memory binary cache (kept for older callers)."""
        return self.engine._binaries

    @property
    def _traces(self) -> Dict:
        """The engine's bounded in-memory trace cache."""
        return self.engine._traces

    # ------------------------------------------------------------------
    def benchmarks(self) -> List[str]:
        """Benchmarks selected by the profile (default: the full suite)."""
        return self.engine.benchmarks()

    def binary(self, benchmark: str, flavour: str) -> Program:
        """Return (building and caching) one compiled binary."""
        return self.engine.build_binary(benchmark, flavour)

    def trace(self, benchmark: str, flavour: str) -> List[DynInst]:
        """Return (collecting and caching) the dynamic trace of one binary.

        The engine may hold the trace as a columnar pack; this shim keeps
        its historical ``List[DynInst]`` contract (slicing, indexing, and
        identity across repeated calls) by materialising the object form
        once per underlying pack for legacy callers.
        """
        trace = self.engine.collect_trace(benchmark, flavour)
        if isinstance(trace, list):
            return trace
        cell = (benchmark, flavour)
        cached = self._materialised.get(cell)
        if cached is not None and cached[0] is trace:
            return cached[1]
        objects = trace.to_dyninsts()
        self._materialised[cell] = (trace, objects)
        return objects

    def drop_trace(self, benchmark: str, flavour: str) -> None:
        """Free a cached trace (the engine also evicts automatically)."""
        self.engine.release_trace(benchmark, flavour)

    # ------------------------------------------------------------------
    def run_scheme(
        self,
        benchmark: str,
        flavour: str,
        scheme_factory: Callable[[], BranchHandlingScheme],
    ) -> BenchmarkRun:
        """Simulate one benchmark binary under a freshly-built scheme.

        ``scheme_factory`` may be a zero-argument callable (the historical
        API) or a :class:`~repro.engine.SchemeSpec`; specs additionally hit
        the engine's persistent result cache when a store is configured.
        """
        if isinstance(scheme_factory, SchemeSpec):
            result = self.engine.simulate(benchmark, flavour, scheme_factory)
        else:
            trace = self.engine.collect_trace(benchmark, flavour)
            core = OutOfOrderCore()
            result = core.run(
                iter(trace), scheme_factory(), program_name=benchmark
            )
            self.engine.stats.simulations_run += 1
        return BenchmarkRun(benchmark=benchmark, flavour=flavour, result=result)

    def run_schemes(
        self,
        benchmark: str,
        flavour: str,
        scheme_factories: Dict[str, Callable[[], BranchHandlingScheme]],
    ) -> Dict[str, BenchmarkRun]:
        """Simulate one benchmark under several schemes over the same trace."""
        return {
            label: self.run_scheme(benchmark, flavour, factory)
            for label, factory in scheme_factories.items()
        }
