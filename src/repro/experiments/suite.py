"""Run the entire evaluation through one shared engine pass.

``run_all`` is the whole-paper sweep behind the ``repro all`` CLI command:
it plans every experiment's definition into a *single* job graph, so the
deduplicated DAG executes each shared (benchmark, flavour, scheme) cell
exactly once — e.g. the predicate scheme on if-converted code is simulated
once and its result feeds Figure 6a, both ablations and the IPC study.
With an artifact store configured, a re-run serves everything from disk.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine import BASELINE, IF_CONVERTED, resolve_engine
from repro.experiments.ablations import (
    collect_history_ablation,
    collect_pvt_ablation,
    history_ablation_definition,
    pvt_ablation_definition,
)
from repro.experiments.figure5 import collect_figure5, figure5_definition
from repro.experiments.figure6 import collect_figure6, figure6_definition
from repro.experiments.idealized import (
    collect_idealized,
    idealized_definition,
    oracle_accuracies,
)
from repro.experiments.selective_ipc import (
    collect_selective_ipc,
    selective_ipc_definition,
)
from repro.experiments.setup import paper_table1
from repro.stats.reporting import report_block

#: Descriptive banner titles of each report (keys double as file names; the
#: benchmark harness archives its figures under the same names).
REPORT_TITLES = {
    "table1": "Table 1 - main architectural parameters",
    "figure5": "Figure 5 - misprediction rates (non-if-converted binaries)",
    "figure6": "Figure 6 - misprediction rates and breakdown (if-converted binaries)",
    "idealized_baseline": "Idealized predictors - non-if-converted code",
    "idealized_if_converted": "Idealized predictors - if-converted code",
    "ablation_pvt": "Ablation - PVT organisation",
    "ablation_history": "Ablation - global-history corruption",
    "selective_ipc": "Selective predicated execution - IPC on if-converted code",
}


@dataclass
class SuiteResult:
    """Every report of the evaluation, rendered, in presentation order."""

    reports: "OrderedDict[str, str]" = field(default_factory=OrderedDict)
    #: what the engine did to produce them (for the CLI summary line).
    stats_line: str = ""

    def render(self) -> str:
        blocks = [
            report_block(REPORT_TITLES.get(name, name), body)
            for name, body in self.reports.items()
        ]
        if self.stats_line:
            blocks.append(f"engine: {self.stats_line}")
        return "\n".join(blocks)


def run_all(
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> SuiteResult:
    """Regenerate every table and figure in one deduplicated engine pass."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()

    figure5 = figure5_definition(benchmarks)
    figure6 = figure6_definition(benchmarks)
    ideal_base = idealized_definition(BASELINE, benchmarks)
    ideal_conv = idealized_definition(IF_CONVERTED, benchmarks)
    pvt = pvt_ablation_definition(benchmarks)
    history = history_ablation_definition(benchmarks)
    ipc = selective_ipc_definition(benchmarks)

    outputs = engine.run(
        [figure5, figure6, ideal_base, ideal_conv, pvt, history, ipc], jobs=jobs
    )

    reports: "OrderedDict[str, str]" = OrderedDict()
    reports["table1"] = "\n".join(
        f"{key:28s} {value}" for key, value in paper_table1().items()
    )
    reports["figure5"] = collect_figure5(outputs[figure5.name], benchmarks).render()
    reports["figure6"] = collect_figure6(outputs[figure6.name], benchmarks).render()
    reports["idealized_baseline"] = collect_idealized(
        outputs[ideal_base.name],
        benchmarks,
        BASELINE,
        oracle_accuracy=oracle_accuracies(engine, benchmarks, BASELINE),
    ).render()
    reports["idealized_if_converted"] = collect_idealized(
        outputs[ideal_conv.name],
        benchmarks,
        IF_CONVERTED,
        oracle_accuracy=oracle_accuracies(engine, benchmarks, IF_CONVERTED),
    ).render()
    reports["ablation_pvt"] = collect_pvt_ablation(
        outputs[pvt.name], benchmarks
    ).render()
    reports["ablation_history"] = collect_history_ablation(
        outputs[history.name], benchmarks
    ).render()
    reports["selective_ipc"] = collect_selective_ipc(
        outputs[ipc.name], benchmarks
    ).render()

    return SuiteResult(reports=reports, stats_line=engine.stats.render())


def write_reports(suite: SuiteResult, output_dir: str) -> List[str]:
    """Write each report to ``<output_dir>/<name>.txt``; return the paths."""
    import os

    os.makedirs(output_dir, exist_ok=True)
    written: List[str] = []
    for name, body in suite.reports.items():
        path = os.path.join(output_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report_block(REPORT_TITLES.get(name, name), body))
        written.append(path)
    return written
