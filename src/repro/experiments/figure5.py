"""Figure 5: branch misprediction rates on **non-if-converted** code.

The paper compares a 148 KB conventional two-level branch predictor against
the 148 KB predicate predictor on binaries compiled *without* predication,
and reports that the predicate predictor achieves better accuracy on all but
three benchmarks, with an average accuracy increase of 1.86 %.

``run_figure5`` regenerates the same comparison on the synthetic suite and
returns both the per-benchmark table and the headline summary numbers.  The
sweep itself is declared as an :class:`~repro.engine.ExperimentDefinition`
and executed by the job-graph engine, so binaries, traces and results are
shared (in memory and, with a store, on disk) with every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.engine import (
    BASELINE,
    ExperimentDefinition,
    ExperimentOutputs,
    SchemeSpec,
    resolve_engine,
    sweep,
)
from repro.stats.tables import ResultTable

CONVENTIONAL = "conventional"
PREDICATE = "predicate-predictor"

#: The schemes Figure 5 sweeps, keyed by column label.
FIGURE5_SCHEMES = {
    CONVENTIONAL: SchemeSpec.make("conventional"),
    PREDICATE: SchemeSpec.make("predicate"),
}


@dataclass
class Figure5Result:
    """Everything Figure 5 shows, plus the numbers quoted in the text."""

    table: ResultTable
    #: average accuracy increase of the predicate predictor over the
    #: conventional predictor (positive = predicate predictor better).
    average_accuracy_increase: float
    #: benchmarks where the predicate predictor is strictly better.
    predicate_wins: int
    #: benchmarks where the conventional predictor is strictly better
    #: (the paper reports three such exceptions).
    conventional_wins: int
    #: fraction of dynamic branches that were early-resolved, per benchmark.
    early_resolved: Dict[str, float]

    def render(self) -> str:
        lines = [self.table.render()]
        lines.append("")
        lines.append(
            f"average accuracy increase of the predicate predictor: "
            f"{100 * self.average_accuracy_increase:.2f}% "
            f"(paper: 1.86%)"
        )
        lines.append(
            f"benchmarks where the predicate predictor wins: "
            f"{self.predicate_wins}/{len(self.table.benchmarks())} "
            f"(paper: all but 3)"
        )
        return "\n".join(lines)


def figure5_definition(benchmarks: Sequence[str]) -> ExperimentDefinition:
    """Declare the Figure 5 sweep over ``benchmarks``."""
    return sweep("figure5", benchmarks, BASELINE, FIGURE5_SCHEMES)


def collect_figure5(
    outputs: ExperimentOutputs, benchmarks: Sequence[str]
) -> Figure5Result:
    """Assemble the Figure 5 result from engine outputs."""
    table = ResultTable.from_results(
        title="Figure 5 - branch misprediction rate, non-if-converted code",
        columns=[CONVENTIONAL, PREDICATE],
        benchmarks=benchmarks,
        outputs=outputs,
    )
    early_resolved = {
        benchmark: outputs[(benchmark, PREDICATE)].accuracy.early_resolved_fraction
        for benchmark in benchmarks
    }
    return Figure5Result(
        table=table,
        average_accuracy_increase=table.delta(PREDICATE, CONVENTIONAL),
        predicate_wins=table.wins(PREDICATE, CONVENTIONAL),
        conventional_wins=table.wins(CONVENTIONAL, PREDICATE),
        early_resolved=early_resolved,
    )


def run_figure5(
    profile=None,
    runner=None,
    engine=None,
    jobs: Optional[int] = None,
) -> Figure5Result:
    """Regenerate Figure 5 over the selected benchmarks."""
    engine = resolve_engine(engine=engine, runner=runner, profile=profile)
    benchmarks = engine.benchmarks()
    definition = figure5_definition(benchmarks)
    outputs = engine.run([definition], jobs=jobs)[definition.name]
    return collect_figure5(outputs, benchmarks)
