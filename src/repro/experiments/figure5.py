"""Figure 5: branch misprediction rates on **non-if-converted** code.

The paper compares a 148 KB conventional two-level branch predictor against
the 148 KB predicate predictor on binaries compiled *without* predication,
and reports that the predicate predictor achieves better accuracy on all but
three benchmarks, with an average accuracy increase of 1.86 %.

``run_figure5`` regenerates the same comparison on the synthetic suite and
returns both the per-benchmark table and the headline summary numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.runner import BASELINE, ExperimentRunner
from repro.experiments.setup import (
    ExperimentProfile,
    make_conventional_scheme,
    make_predicate_scheme,
)
from repro.stats.tables import ResultTable

CONVENTIONAL = "conventional"
PREDICATE = "predicate-predictor"


@dataclass
class Figure5Result:
    """Everything Figure 5 shows, plus the numbers quoted in the text."""

    table: ResultTable
    #: average accuracy increase of the predicate predictor over the
    #: conventional predictor (positive = predicate predictor better).
    average_accuracy_increase: float
    #: benchmarks where the predicate predictor is strictly better.
    predicate_wins: int
    #: benchmarks where the conventional predictor is strictly better
    #: (the paper reports three such exceptions).
    conventional_wins: int
    #: fraction of dynamic branches that were early-resolved, per benchmark.
    early_resolved: Dict[str, float]

    def render(self) -> str:
        lines = [self.table.render()]
        lines.append("")
        lines.append(
            f"average accuracy increase of the predicate predictor: "
            f"{100 * self.average_accuracy_increase:.2f}% "
            f"(paper: 1.86%)"
        )
        lines.append(
            f"benchmarks where the predicate predictor wins: "
            f"{self.predicate_wins}/{len(self.table.benchmarks())} "
            f"(paper: all but 3)"
        )
        return "\n".join(lines)


def run_figure5(
    profile: Optional[ExperimentProfile] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Figure5Result:
    """Regenerate Figure 5 over the selected benchmarks."""
    runner = runner or ExperimentRunner(profile)
    table = ResultTable(
        title="Figure 5 - branch misprediction rate, non-if-converted code",
        columns=[CONVENTIONAL, PREDICATE],
    )
    early_resolved: Dict[str, float] = {}

    for benchmark in runner.benchmarks():
        runs = runner.run_schemes(
            benchmark,
            BASELINE,
            {
                CONVENTIONAL: make_conventional_scheme,
                PREDICATE: make_predicate_scheme,
            },
        )
        table.add_row(
            benchmark,
            {
                CONVENTIONAL: runs[CONVENTIONAL].misprediction_rate,
                PREDICATE: runs[PREDICATE].misprediction_rate,
            },
        )
        early_resolved[benchmark] = runs[
            PREDICATE
        ].result.accuracy.early_resolved_fraction
        runner.drop_trace(benchmark, BASELINE)

    return Figure5Result(
        table=table,
        average_accuracy_increase=table.delta(PREDICATE, CONVENTIONAL),
        predicate_wins=table.wins(PREDICATE, CONVENTIONAL),
        conventional_wins=table.wins(CONVENTIONAL, PREDICATE),
        early_resolved=early_resolved,
    )
