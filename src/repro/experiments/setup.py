"""Experiment configuration: Table 1, scheme factories and run profiles."""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.core.conventional import ConventionalScheme
from repro.core.peppa_scheme import PEPPAScheme
from repro.core.predicate_aware_scheme import PredicateAwareScheme
from repro.core.predicate_scheme import PredicatePredictionScheme, PredicateSchemeOptions
from repro.core.wish_scheme import WishBranchScheme
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.pipeline.config import PipelineConfig
from repro.predictors.peppa import PEPPAConfig
from repro.predictors.perceptron import PerceptronConfig
from repro.predictors.predicate_aware import PredicateAwareConfig
from repro.predictors.predicate_perceptron import PredicatePredictorConfig


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def paper_table1() -> Dict[str, str]:
    """Return Table 1 of the paper as reproduced by this code base.

    The values are pulled from the live default configurations so the table
    printed by the benchmark harness can never drift from what the simulator
    actually models.
    """
    pipeline = PipelineConfig()
    memory = MemoryHierarchyConfig()
    perceptron = PerceptronConfig()
    predicate = PredicatePredictorConfig()
    peppa = PEPPAConfig()
    return {
        "Fetch Width": (
            f"Up to {pipeline.bundles_per_fetch} bundles "
            f"({pipeline.fetch_width} instructions)"
        ),
        "Issue Queues": (
            f"Integer: {pipeline.int_queue_entries} entries, "
            f"FP: {pipeline.fp_queue_entries} entries, "
            f"Branch: {pipeline.branch_queue_entries} entries, "
            f"Load-Store: 2 x {pipeline.load_queue_entries} entries"
        ),
        "Reorder Buffer": f"{pipeline.rob_entries} entries",
        "L1D": (
            f"{memory.l1d.size_bytes // 1024}KB, {memory.l1d.associativity}-way, "
            f"{memory.l1d.block_bytes}B block, {memory.l1d.hit_latency}-cycle latency, "
            f"non-blocking ({memory.l1d.primary_misses} primary misses), "
            f"{memory.l1d_write_buffer_entries} write-buffer entries"
        ),
        "L1I": (
            f"{memory.l1i.size_bytes // 1024}KB, {memory.l1i.associativity}-way, "
            f"{memory.l1i.block_bytes}B block, {memory.l1i.hit_latency}-cycle latency"
        ),
        "L2 unified": (
            f"{memory.l2.size_bytes // 1024 // 1024}MB, {memory.l2.associativity}-way, "
            f"{memory.l2.block_bytes}B block, {memory.l2.hit_latency}-cycle latency, "
            f"{memory.l2_write_buffer_entries} write-buffer entries"
        ),
        "DTLB": f"{memory.dtlb.entries} entries, {memory.dtlb.miss_penalty}-cycle miss penalty",
        "ITLB": f"{memory.itlb.entries} entries, {memory.itlb.miss_penalty}-cycle miss penalty",
        "Main Memory": f"{memory.memory_latency} cycles of latency",
        "Multilevel Branch Predictor": (
            "First level: gshare, 14-bit GHR, 4KB, 1-cycle access. "
            f"Second level: perceptron, {perceptron.global_bits}-bit GHR, "
            f"{perceptron.local_bits}-bit LHR, ~148KB, "
            f"{PipelineConfig().second_level_latency}-cycle access. "
            f"{PipelineConfig().branch_mispredict_penalty} cycles for misprediction recovery"
        ),
        "Predicate Predictor": (
            f"Perceptron, {predicate.global_bits}-bit GHR, {predicate.local_bits}-bit LHR, "
            f"~148KB, {PipelineConfig().second_level_latency}-cycle access. "
            f"{PipelineConfig().predicate_mispredict_penalty} cycles for misprediction recovery"
        ),
        "PEP-PA Predictor": (
            f"{peppa.local_bits}-bit local histories, "
            f"{peppa.storage_bits() // 8 // 1024}KB"
        ),
    }


# ----------------------------------------------------------------------
# Run profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentProfile:
    """How much work an experiment run performs.

    The paper simulates 100 M committed instructions per benchmark on a C++
    simulator; the pure-Python reproduction defaults to much smaller budgets
    that still give stable misprediction rates for the synthetic workloads.
    """

    name: str
    instructions_per_benchmark: int
    benchmarks: Optional[List[str]] = None  # None = the full 22-program suite
    profile_budget: int = 20_000

    def with_benchmarks(self, benchmarks: List[str]) -> "ExperimentProfile":
        return ExperimentProfile(
            name=self.name,
            instructions_per_benchmark=self.instructions_per_benchmark,
            benchmarks=list(benchmarks),
            profile_budget=self.profile_budget,
        )


#: Profile used by the benchmark harness (full suite).
PAPER_PROFILE = ExperimentProfile(name="paper", instructions_per_benchmark=40_000)

#: Profile used by the test-suite (small budgets, a few benchmarks).
FAST_PROFILE = ExperimentProfile(
    name="fast",
    instructions_per_benchmark=6_000,
    benchmarks=["gzip", "twolf", "swim"],
    profile_budget=6_000,
)


def profile_from_environment(default: ExperimentProfile = PAPER_PROFILE) -> ExperimentProfile:
    """Resolve the active profile, honouring ``REPRO_BENCH_INSTRUCTIONS`` and
    ``REPRO_BENCH_BENCHMARKS`` environment overrides."""
    instructions = int(
        os.environ.get("REPRO_BENCH_INSTRUCTIONS", default.instructions_per_benchmark)
    )
    benchmarks_env = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    benchmarks = (
        [b.strip() for b in benchmarks_env.split(",") if b.strip()]
        if benchmarks_env
        else default.benchmarks
    )
    return ExperimentProfile(
        name=default.name,
        instructions_per_benchmark=instructions,
        benchmarks=benchmarks,
        profile_budget=default.profile_budget,
    )


# ----------------------------------------------------------------------
# Scheme factories (one place controls the sizes used everywhere)
# ----------------------------------------------------------------------
def _geometry_overrides(
    entries: Optional[int], global_bits: Optional[int], local_bits: Optional[int]
) -> Dict[str, int]:
    """Non-``None`` perceptron-geometry overrides as replace() kwargs.

    Shared by the conventional and predicate factories so the sweep
    subsystem's predictor-budget axis (:mod:`repro.sweep`) can scale either
    predictor's table below the paper's 148 KB budget.
    """
    requested = {
        "entries": entries,
        "global_bits": global_bits,
        "local_bits": local_bits,
    }
    return {name: value for name, value in requested.items() if value is not None}


#: Valid values of every *string-valued* scheme-factory option; the sweep
#: scenario parser validates string axis positions against these eagerly.
SCHEME_OPTION_CHOICES: Dict[str, tuple] = {
    "second_level": ("perceptron", "tage"),
}


def scheme_option_defaults(kind: str) -> Dict[str, Any]:
    """The *effective* default of every option a scheme factory accepts.

    Boolean flags and string choices carry their default right in the
    factory signature; geometry options take ``None`` as "keep the Table 1
    value", so the value a ``None`` resolves to is read from the predictor
    configs.  Callers that need option values to be canonical — the sweep
    subsystem normalizes away options equal to these before building a
    :class:`~repro.engine.jobs.SchemeSpec`, so a Table 1 point contributes
    the same cache token as the plain scheme — read them from here.
    """
    defaults: Dict[str, Any] = {
        name: parameter.default
        for name, parameter in inspect.signature(scheme_factory(kind)).parameters.items()
        if parameter.default is not inspect.Parameter.empty
        and parameter.default is not None
    }
    if kind == "conventional":
        config: Any = PerceptronConfig()
    elif kind == "predicate":
        config = PredicatePredictorConfig()
    elif kind == "predicate-aware":
        config = PredicateAwareConfig()
        defaults.update(
            entries=config.entries,
            global_bits=config.global_bits,
            local_bits=config.local_bits,
            predicate_bits=config.predicate_bits,
        )
        return defaults
    else:
        return defaults
    defaults.update(
        entries=config.entries,
        global_bits=config.global_bits,
        local_bits=config.local_bits,
    )
    return defaults


def make_conventional_scheme(
    ideal_no_alias: bool = False,
    perfect_history: bool = False,
    entries: Optional[int] = None,
    global_bits: Optional[int] = None,
    local_bits: Optional[int] = None,
    second_level: str = "perceptron",
) -> ConventionalScheme:
    """The 148 KB (+4 KB gshare) conventional two-level override predictor.

    ``entries`` / ``global_bits`` / ``local_bits`` override the second-level
    perceptron geometry (``None`` keeps the Table 1 value; they are ignored
    by the TAGE backend).  ``second_level`` selects the slow predictor:
    ``"perceptron"`` (Table 1) or ``"tage"``.
    """
    config = replace(
        PerceptronConfig(), **_geometry_overrides(entries, global_bits, local_bits)
    )
    return ConventionalScheme(
        perceptron_config=config,
        ideal_no_alias=ideal_no_alias,
        perfect_history=perfect_history,
        second_level=second_level,
    )


def make_peppa_scheme() -> PEPPAScheme:
    """The 144 KB PEP-PA predictor."""
    return PEPPAScheme(PEPPAConfig())


def make_predicate_scheme(
    selective_predication: bool = True,
    ideal_no_alias: bool = False,
    perfect_history: bool = False,
    split_pvt: bool = False,
    entries: Optional[int] = None,
    global_bits: Optional[int] = None,
    local_bits: Optional[int] = None,
    second_level: str = "perceptron",
) -> PredicatePredictionScheme:
    """The 148 KB predicate perceptron scheme (the paper's proposal).

    ``entries`` / ``global_bits`` / ``local_bits`` override the predicate
    perceptron geometry (``None`` keeps the Table 1 value; they are ignored
    by the TAGE backend).  ``second_level`` selects the predicate-predictor
    structure: the paper's dual-hash perceptron (``"perceptron"``) or the
    TAGE-class backend behind the same slot interface (``"tage"``).
    """
    config = replace(
        PredicatePredictorConfig(split_pvt=split_pvt),
        **_geometry_overrides(entries, global_bits, local_bits),
    )
    options = PredicateSchemeOptions(
        predictor_config=config,
        selective_predication=selective_predication,
        ideal_no_alias=ideal_no_alias,
        perfect_history=perfect_history,
        second_level=second_level,
    )
    return PredicatePredictionScheme(options)


def make_wish_scheme(
    second_level: str = "perceptron",
    confidence_bits: int = 4,
) -> WishBranchScheme:
    """The wish-branch scheme: confidence-gated predication-to-branching.

    ``second_level`` selects the slow *branch* predictor (``"perceptron"``
    or ``"tage"``); the guard predictor is always the 148 KB dual-hash
    predicate perceptron gated by a ``confidence_bits``-wide saturating
    counter per entry.
    """
    return WishBranchScheme(
        second_level=second_level, confidence_bits=confidence_bits
    )


def make_predicate_aware_scheme(
    entries: Optional[int] = None,
    global_bits: Optional[int] = None,
    local_bits: Optional[int] = None,
    predicate_bits: Optional[int] = None,
) -> PredicateAwareScheme:
    """The predicate-aware branch predictor (mixed branch/predicate history).

    The geometry options override the predicate-aware perceptron
    (``None`` keeps the default ~148 KB-comparable configuration).
    """
    overrides = _geometry_overrides(entries, global_bits, local_bits)
    if predicate_bits is not None:
        overrides["predicate_bits"] = predicate_bits
    config = replace(PredicateAwareConfig(), **overrides)
    return PredicateAwareScheme(config)


#: Scheme kind -> factory.  This is *the* scheme registry: SchemeSpec.build,
#: the sweep scenario parser and the serve submission validator all resolve
#: kinds through it, so registering a factory here is all it takes for a new
#: scheme to compose with sweeps, bench cells and serve submissions.
SCHEME_FACTORIES = {
    "conventional": make_conventional_scheme,
    "pep-pa": make_peppa_scheme,
    "predicate": make_predicate_scheme,
    "predicate-aware": make_predicate_aware_scheme,
    "wish": make_wish_scheme,
}


def scheme_kinds() -> tuple:
    """Every registered scheme kind, in registry order."""
    return tuple(SCHEME_FACTORIES)


def scheme_factory(kind: str):
    """The factory registered for ``kind`` (raises ``ValueError`` if none)."""
    try:
        return SCHEME_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown scheme kind {kind!r}; expected one of "
            f"{sorted(SCHEME_FACTORIES)}"
        ) from None
