"""Experiment harness: everything needed to regenerate the paper's results.

* :mod:`repro.experiments.setup` — the Table 1 machine configuration, the
  scheme factories used by every experiment, and the instruction budgets
  (``fast`` for the test-suite, ``paper`` for the benchmark harness);
* :mod:`repro.experiments.runner` — compiles the benchmark binaries, runs
  the traces through the schemes, and caches intermediate artefacts;
* :mod:`repro.experiments.figure5` — Figure 5 (non-if-converted binaries);
* :mod:`repro.experiments.figure6` — Figure 6a and the Figure 6b breakdown
  (if-converted binaries);
* :mod:`repro.experiments.idealized` — the idealized (no-alias, perfect
  history) isolation study of sections 4.2/4.3;
* :mod:`repro.experiments.ablations` — design-choice ablations called out in
  section 3.3 (single dual-hashed PVT vs split PVT; history corruption);
* :mod:`repro.experiments.selective_ipc` — the predicated-execution IPC
  comparison behind the section 5 claim that the same hardware enables
  efficient predicated execution.
"""

from repro.experiments.setup import (
    ExperimentProfile,
    PAPER_PROFILE,
    FAST_PROFILE,
    make_conventional_scheme,
    make_peppa_scheme,
    make_predicate_scheme,
    paper_table1,
)
from repro.experiments.runner import ExperimentRunner, BenchmarkRun
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.idealized import IdealizedResult, run_idealized_study
from repro.experiments.ablations import AblationResult, run_pvt_ablation, run_history_ablation
from repro.experiments.selective_ipc import SelectiveIPCResult, run_selective_ipc

__all__ = [
    "ExperimentProfile",
    "PAPER_PROFILE",
    "FAST_PROFILE",
    "make_conventional_scheme",
    "make_peppa_scheme",
    "make_predicate_scheme",
    "paper_table1",
    "ExperimentRunner",
    "BenchmarkRun",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "IdealizedResult",
    "run_idealized_study",
    "AblationResult",
    "run_pvt_ablation",
    "run_history_ablation",
    "SelectiveIPCResult",
    "run_selective_ipc",
]
