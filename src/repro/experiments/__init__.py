"""Experiment harness: everything needed to regenerate the paper's results.

* :mod:`repro.experiments.setup` — the Table 1 machine configuration, the
  scheme factories used by every experiment, and the instruction budgets
  (``fast`` for the test-suite, ``paper`` for the benchmark harness);
* :mod:`repro.experiments.runner` — a thin compatibility shim over the
  :mod:`repro.engine` job-graph engine, which plans, deduplicates, caches
  and parallelises the (benchmark × flavour × scheme) sweeps;
* :mod:`repro.experiments.figure5` — Figure 5 (non-if-converted binaries);
* :mod:`repro.experiments.figure6` — Figure 6a and the Figure 6b breakdown
  (if-converted binaries);
* :mod:`repro.experiments.idealized` — the idealized (no-alias, perfect
  history) isolation study of sections 4.2/4.3;
* :mod:`repro.experiments.ablations` — design-choice ablations called out in
  section 3.3 (single dual-hashed PVT vs split PVT; history corruption);
* :mod:`repro.experiments.selective_ipc` — the predicated-execution IPC
  comparison behind the section 5 claim that the same hardware enables
  efficient predicated execution;
* :mod:`repro.experiments.suite` — the whole evaluation in one shared,
  deduplicated engine pass (the ``repro all`` command).
"""

from repro.experiments.setup import (
    ExperimentProfile,
    PAPER_PROFILE,
    FAST_PROFILE,
    make_conventional_scheme,
    make_peppa_scheme,
    make_predicate_scheme,
    paper_table1,
)
from repro.experiments.runner import ExperimentRunner, BenchmarkRun
from repro.experiments.figure5 import Figure5Result, figure5_definition, run_figure5
from repro.experiments.figure6 import Figure6Result, figure6_definition, run_figure6
from repro.experiments.idealized import (
    IdealizedResult,
    idealized_definition,
    run_idealized_study,
)
from repro.experiments.ablations import (
    AblationResult,
    history_ablation_definition,
    pvt_ablation_definition,
    run_pvt_ablation,
    run_history_ablation,
)
from repro.experiments.selective_ipc import (
    SelectiveIPCResult,
    run_selective_ipc,
    selective_ipc_definition,
)
from repro.experiments.suite import SuiteResult, run_all, write_reports

__all__ = [
    "ExperimentProfile",
    "PAPER_PROFILE",
    "FAST_PROFILE",
    "make_conventional_scheme",
    "make_peppa_scheme",
    "make_predicate_scheme",
    "paper_table1",
    "ExperimentRunner",
    "BenchmarkRun",
    "Figure5Result",
    "figure5_definition",
    "run_figure5",
    "Figure6Result",
    "figure6_definition",
    "run_figure6",
    "IdealizedResult",
    "idealized_definition",
    "run_idealized_study",
    "AblationResult",
    "pvt_ablation_definition",
    "history_ablation_definition",
    "run_pvt_ablation",
    "run_history_ablation",
    "SelectiveIPCResult",
    "selective_ipc_definition",
    "run_selective_ipc",
    "SuiteResult",
    "run_all",
    "write_reports",
]
